package nvmllc_test

// Allocation gate for the streaming trace pipeline: the chunked
// double-buffer exists to make simulation memory O(chunk), so a
// regression that re-introduces per-access or per-chunk allocation must
// fail CI, not just drift the committed numbers. The gate replays the
// BenchmarkHotLoop_Streaming configuration and compares allocations per
// run against the committed BENCH_hotloop.json streaming row.

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// benchBaseline mirrors the BENCH_hotloop.json fields the gate needs.
type benchBaseline struct {
	Results []struct {
		Benchmark   string `json:"benchmark"`
		Input       string `json:"input"`
		AllocsPerOp int64  `json:"allocs_per_op"`
		BytesPerOp  int64  `json:"bytes_per_op"`
	} `json:"results"`
}

func TestStreamingAllocGate(t *testing.T) {
	data, err := os.ReadFile("BENCH_hotloop.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing BENCH_hotloop.json: %v", err)
	}
	budget := int64(-1)
	for _, r := range base.Results {
		// The generator-fed streaming row is the like-for-like baseline:
		// this gate replays exactly that configuration.
		if r.Benchmark == "HotLoop_64Cores" && r.Input == "streaming+gen" {
			budget = r.AllocsPerOp
			break
		}
	}
	if budget < 0 {
		t.Fatal("BENCH_hotloop.json has no streaming+gen HotLoop_64Cores row; regenerate it with cmd/benchreport")
	}

	const cores = 64
	p, err := workload.ByName("ft")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(p, workload.Options{Accesses: 100_000, Threads: cores, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := system.Gainestown(reference.SRAMBaseline()).WithCores(cores)

	measure := func(t *testing.T, cfg system.Config) int64 {
		var scratch system.Scratch
		run := func() {
			gen.Reset()
			if _, err := system.RunStreamWith(context.Background(), cfg, gen, &scratch); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the scratch buffers, as the benchmark's steady state does
		return int64(testing.AllocsPerRun(5, run))
	}

	t.Run("baseline", func(t *testing.T) {
		got := measure(t, cfg)
		// 25% slack plus a small absolute floor absorbs runtime-internal
		// allocation jitter (goroutine wakeups, channel ops) without letting a
		// real per-chunk regression through.
		limit := budget + budget/4 + 16
		if got > limit {
			t.Errorf("streaming run allocates %d objects, committed baseline %d (limit %d): the chunked pipeline must stay allocation-free per chunk", got, budget, limit)
		}
	})

	t.Run("chunk-scaling", func(t *testing.T) {
		// The ring pipeline's allocations are O(ring depth), not
		// O(chunks): a trace with 3× the chunks must fit the same budget
		// as the baseline, or something is allocating per chunk (slot
		// churn, segment-queue growth, lane re-allocation).
		long, err := workload.NewGenerator(p, workload.Options{Accesses: 300_000, Threads: cores, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		var scratch system.Scratch
		run := func() {
			long.Reset()
			if _, err := system.RunStreamWith(context.Background(), cfg, long, &scratch); err != nil {
				t.Fatal(err)
			}
		}
		run()
		got := int64(testing.AllocsPerRun(5, run))
		limit := budget + budget/4 + 16
		if got > limit {
			t.Errorf("3× chunk count allocates %d objects vs baseline %d (limit %d): ring allocations must not scale with chunk count", got, budget, limit)
		}
	})

	t.Run("sampling", func(t *testing.T) {
		// Epoch sampling on top of the streaming pipeline must stay
		// O(points): the timeline's fixed-budget buffers, its snapshot, and
		// the per-set heatmap — never per-access or per-chunk allocation.
		// The absolute floor covers those fixed structures (timeline buffer
		// growth, snapshot backing array, wear grid); everything else is the
		// same budget as the unsampled gate.
		sampled := cfg
		sampled.TrackWear = true
		sampled.Timeline = &system.TimelineConfig{}
		got := measure(t, sampled)
		limit := budget + budget/4 + 80
		if got > limit {
			t.Errorf("sampled streaming run allocates %d objects, baseline %d (limit %d): epoch sampling must stay O(points), not O(accesses)", got, budget, limit)
		}
	})
}
