package nvmllc_test

// Hot-loop micro-benchmarks behind BENCH_hotloop.json (see the README's
// Performance section). BenchmarkHotLoop_{4,16,64}Cores isolate the
// simulator's per-access path — the min-heap core scheduler, the
// hierarchy walk and the allocation-free trace split — at the paper's
// Section V-C core counts; BenchmarkTraceGen isolates the synthetic
// workload generator. Run with -benchmem; cmd/benchreport re-measures
// the same loops against the historical linear-scan scheduler and
// writes the committed baseline.

import (
	"context"
	"testing"

	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// hotLoopTrace generates the multi-threaded trace the hot-loop
// benchmarks simulate (outside the timed region).
func hotLoopTrace(b *testing.B, cores int) *trace.Trace {
	b.Helper()
	p, err := workload.ByName("ft")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 100_000, Threads: cores, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchHotLoop(b *testing.B, cores int) {
	tr := hotLoopTrace(b, cores)
	cfg := system.Gainestown(reference.SRAMBaseline()).WithCores(cores)
	var scratch system.Scratch
	b.ReportAllocs()
	b.SetBytes(int64(len(tr.Accesses)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := system.RunWith(context.Background(), cfg, tr, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotLoop_4Cores(b *testing.B)  { benchHotLoop(b, 4) }
func BenchmarkHotLoop_16Cores(b *testing.B) { benchHotLoop(b, 16) }
func BenchmarkHotLoop_64Cores(b *testing.B) { benchHotLoop(b, 64) }

// BenchmarkHotLoop_Sampling is BenchmarkHotLoop_64Cores with epoch
// sampling on: the per-access cost of the -timeline instrumentation
// (one counter compare per retired batch plus an O(points) capture at
// epoch boundaries). Compare against BenchmarkHotLoop_64Cores; the
// committed budget is <5% (cmd/benchreport pins it in
// BENCH_hotloop.json's sampling comparison).
func BenchmarkHotLoop_Sampling(b *testing.B) {
	const cores = 64
	tr := hotLoopTrace(b, cores)
	cfg := system.Gainestown(reference.SRAMBaseline()).WithCores(cores)
	cfg.Timeline = &system.TimelineConfig{}
	var scratch system.Scratch
	b.ReportAllocs()
	b.SetBytes(int64(len(tr.Accesses)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := system.RunWith(context.Background(), cfg, tr, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotLoop_Streaming measures the chunked streaming pipeline at
// the 64-core configuration where whole-trace materialization costs the
// most memory: the generator produces chunk N+1 while the simulator
// consumes chunk N, and per-iteration memory stays O(chunk) regardless
// of trace length (the bytes/op here is the BENCH_hotloop.json
// allocation-gate baseline; see TestStreamingAllocGate).
func BenchmarkHotLoop_Streaming(b *testing.B) {
	const cores = 64
	p, err := workload.ByName("ft")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(p, workload.Options{Accesses: 100_000, Threads: cores, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := system.Gainestown(reference.SRAMBaseline()).WithCores(cores)
	var scratch system.Scratch
	b.ReportAllocs()
	b.SetBytes(int64(gen.Meta().Accesses))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Reset()
		if _, err := system.RunStreamWith(context.Background(), cfg, gen, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGen measures the synthetic trace generator's steady
// state: exact-size buffers, no per-access allocation.
func BenchmarkTraceGen(b *testing.B) {
	p, err := workload.ByName("ft")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := workload.Generate(p, workload.Options{Accesses: 100_000, Threads: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tr.Accesses)))
	}
}
