package nvmllc_test

// Hot-loop micro-benchmarks behind BENCH_hotloop.json (see the README's
// Performance section). BenchmarkHotLoop_{4,16,64}Cores isolate the
// simulator's per-access path — the min-heap core scheduler, the
// hierarchy walk and the allocation-free trace split — at the paper's
// Section V-C core counts; BenchmarkTraceGen isolates the synthetic
// workload generator. Run with -benchmem; cmd/benchreport re-measures
// the same loops against the historical linear-scan scheduler and
// writes the committed baseline.

import (
	"context"
	"testing"

	"nvmllc/internal/cache"
	"nvmllc/internal/engine"
	"nvmllc/internal/profile"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// hotLoopTrace generates the multi-threaded trace the hot-loop
// benchmarks simulate (outside the timed region).
func hotLoopTrace(b *testing.B, cores int) *trace.Trace {
	b.Helper()
	p, err := workload.ByName("ft")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 100_000, Threads: cores, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchHotLoop(b *testing.B, cores int) {
	tr := hotLoopTrace(b, cores)
	cfg := system.Gainestown(reference.SRAMBaseline()).WithCores(cores)
	var scratch system.Scratch
	b.ReportAllocs()
	b.SetBytes(int64(len(tr.Accesses)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := system.RunWith(context.Background(), cfg, tr, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotLoop_4Cores(b *testing.B)  { benchHotLoop(b, 4) }
func BenchmarkHotLoop_16Cores(b *testing.B) { benchHotLoop(b, 16) }
func BenchmarkHotLoop_64Cores(b *testing.B) { benchHotLoop(b, 64) }

// BenchmarkHotLoop_Sampling is BenchmarkHotLoop_64Cores with epoch
// sampling on: the per-access cost of the -timeline instrumentation
// (one counter compare per retired batch plus an O(points) capture at
// epoch boundaries). Compare against BenchmarkHotLoop_64Cores; the
// committed budget is <5% (cmd/benchreport pins it in
// BENCH_hotloop.json's sampling comparison).
func BenchmarkHotLoop_Sampling(b *testing.B) {
	const cores = 64
	tr := hotLoopTrace(b, cores)
	cfg := system.Gainestown(reference.SRAMBaseline()).WithCores(cores)
	cfg.Timeline = &system.TimelineConfig{}
	var scratch system.Scratch
	b.ReportAllocs()
	b.SetBytes(int64(len(tr.Accesses)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := system.RunWith(context.Background(), cfg, tr, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotLoop_StreamingTrace measures the ring pipeline fed from
// an already-materialized trace — the apples-to-apples comparison
// against BenchmarkHotLoop_64Cores, since both sides then time exactly
// the same simulation work and the delta is the pipeline itself
// (benchreport's "input" parity comparison).
func BenchmarkHotLoop_StreamingTrace(b *testing.B) {
	const cores = 64
	tr := hotLoopTrace(b, cores)
	src, err := trace.NewTraceSource(tr)
	if err != nil {
		b.Fatal(err)
	}
	cfg := system.Gainestown(reference.SRAMBaseline()).WithCores(cores)
	var scratch system.Scratch
	b.ReportAllocs()
	b.SetBytes(int64(len(tr.Accesses)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		if _, err := system.RunStreamWith(context.Background(), cfg, src, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotLoop_Streaming measures the chunked streaming pipeline at
// the 64-core configuration where whole-trace materialization costs the
// most memory: the generator produces chunk N+1 while the simulator
// consumes chunk N, and per-iteration memory stays O(chunk) regardless
// of trace length (the bytes/op here is the BENCH_hotloop.json
// allocation-gate baseline; see TestStreamingAllocGate). Trace
// synthesis sits inside the timed region, so on a single-CPU runner
// this carries the full TraceGen cost on top of the pipeline.
func BenchmarkHotLoop_Streaming(b *testing.B) {
	const cores = 64
	p, err := workload.ByName("ft")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(p, workload.Options{Accesses: 100_000, Threads: cores, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := system.Gainestown(reference.SRAMBaseline()).WithCores(cores)
	var scratch system.Scratch
	b.ReportAllocs()
	b.SetBytes(int64(gen.Meta().Accesses))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Reset()
		if _, err := system.RunStreamWith(context.Background(), cfg, gen, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweep runs an 8-design-point LLC-model sweep over one workload
// through the engine with the result cache off, so every point
// simulates each iteration. The Shared/Unshared pair isolates cross-job
// trace sharing: with it the sweep materializes its trace once and
// hands every design point a read-only cursor; without it every point
// re-runs the generator.
func benchSweep(b *testing.B, opts ...engine.Option) {
	p, err := workload.ByName("ft")
	if err != nil {
		b.Fatal(err)
	}
	genOpts := workload.Options{Accesses: 100_000, Threads: 4, Seed: 1}
	models := reference.FixedCapacityModels()[:8]
	jobs := make([]engine.Job, len(models))
	for i, m := range models {
		jobs[i] = engine.StreamJob(p, genOpts, system.Gainestown(m).WithCores(4))
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(models) * genOpts.Accesses))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.New(append([]engine.Option{engine.WithoutCache()}, opts...)...)
		if _, err := eng.RunAll(context.Background(), jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweep_8Points_Shared(b *testing.B)   { benchSweep(b) }
func BenchmarkSweep_8Points_Unshared(b *testing.B) { benchSweep(b, engine.WithoutTraceSharing()) }

// gainestownHierarchy mirrors the simulated private levels for the
// profile filter, so the profiled LLC stream matches the simulator's.
func gainestownHierarchy() profile.Hierarchy {
	sys := system.Gainestown(reference.SRAMBaseline())
	return profile.Hierarchy{
		BlockBytes: sys.BlockBytes,
		L1I:        profile.LevelSpec{CapacityBytes: sys.L1IBytes, Ways: sys.L1IWays},
		L1D:        profile.LevelSpec{CapacityBytes: sys.L1DBytes, Ways: sys.L1DWays},
		L2:         profile.LevelSpec{CapacityBytes: sys.L2Bytes, Ways: sys.L2Ways},
	}
}

// BenchmarkProfile_SinglePass measures the raw Mattson stack profiler —
// Fenwick-tree reuse distances at one LLC set count, every
// associativity 1..16 answered from the same pass — over the hot-loop
// trace, with no upstream filtering.
func BenchmarkProfile_SinglePass(b *testing.B) {
	tr := hotLoopTrace(b, 4)
	src, err := trace.NewTraceSource(tr)
	if err != nil {
		b.Fatal(err)
	}
	cfg := profile.Config{BlockBytes: 64, SetCounts: []int{2048}, MaxWays: 16}
	var sc profile.Scratch
	b.ReportAllocs()
	b.SetBytes(int64(len(tr.Accesses)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		if _, err := profile.Run(context.Background(), src, cfg, &sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfile_8Geometries measures the sweep estimator's fused
// pass: the functional L1/L2 filter plus stack profiling at eight LLC
// set counts (256 KiB to 32 MiB), the single pass that replaces eight
// exact simulations. Compare against 8× BenchmarkHotLoop_4Cores;
// cmd/benchreport pins the ratio in BENCH_hotloop.json's profile
// comparison and CI gates it at ≥3×.
func BenchmarkProfile_8Geometries(b *testing.B) {
	tr := hotLoopTrace(b, 4)
	src, err := trace.NewTraceSource(tr)
	if err != nil {
		b.Fatal(err)
	}
	caps, err := cache.CapacityLadder(32<<20, 8)
	if err != nil {
		b.Fatal(err)
	}
	geoms, err := cache.EnumerateGeoms(caps, 64, 16)
	if err != nil {
		b.Fatal(err)
	}
	cfg := profile.Config{BlockBytes: 64, SetCounts: cache.SetCountsOf(geoms), MaxWays: 16}
	h := gainestownHierarchy()
	var sc profile.Scratch
	b.ReportAllocs()
	b.SetBytes(int64(len(tr.Accesses)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		if _, err := profile.RunFiltered(context.Background(), src, h, cfg, &sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGen measures the synthetic trace generator's steady
// state: exact-size buffers, no per-access allocation.
func BenchmarkTraceGen(b *testing.B) {
	p, err := workload.ByName("ft")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := workload.Generate(p, workload.Options{Accesses: 100_000, Threads: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tr.Accesses)))
	}
}
