module nvmllc

go 1.22
