package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nvmllc/internal/prism"
)

func TestRunWorkload(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), "leela", "", "", 30000, 1, 1, prism.DefaultLocalSkipBits, "binary", 0)
	})
	for _, want := range []string{"Characterization of leela", "global entropy", "90% footprint"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSaveAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "leela.trc")
	capture(t, func() error {
		return run(context.Background(), "leela", "", path, 20000, 1, 1, prism.DefaultLocalSkipBits, "binary", 0)
	})
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace not saved: %v", err)
	}
	out := capture(t, func() error {
		return run(context.Background(), "", path, "", 0, 0, 0, prism.DefaultLocalSkipBits, "binary", 0)
	})
	if !strings.Contains(out, "Characterization of leela") {
		t.Error("reloaded trace not characterized")
	}
}

func TestTextFormatAndWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cg.txt")
	capture(t, func() error {
		return run(context.Background(), "cg", "", path, 20000, 2, 1, prism.DefaultLocalSkipBits, "text", 0)
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# nvmllc-trace v1") {
		t.Error("text save not in text format")
	}
	out := capture(t, func() error {
		return run(context.Background(), "", path, "", 0, 0, 0, prism.DefaultLocalSkipBits, "text", 2000)
	})
	for _, want := range []string{"Characterization of cg", "Working set over time", "unique lines"} {
		if !strings.Contains(out, want) {
			t.Errorf("text/window output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "", "", "", 1000, 1, 1, 10, "binary", 0); err == nil {
		t.Error("no input accepted")
	}
	if err := run(context.Background(), "x", "y", "", 1000, 1, 1, 10, "binary", 0); err == nil {
		t.Error("both inputs accepted")
	}
	if err := run(context.Background(), "", "/nonexistent/file", "", 1000, 1, 1, 10, "binary", 0); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(context.Background(), "cg", "", "", 1000, 1, 1, 10, "yaml", 0); err == nil {
		t.Error("unknown format accepted")
	}
}
