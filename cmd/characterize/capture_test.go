package main

import (
	"bytes"
	"io"
	"os"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		_, cErr := io.Copy(&buf, r)
		done <- cErr
	}()
	ferr := f()
	w.Close()
	if cErr := <-done; cErr != nil {
		t.Fatal(cErr)
	}
	if ferr != nil {
		t.Fatal(ferr)
	}
	return buf.String()
}
