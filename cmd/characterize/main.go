// Command characterize profiles memory traces with the PRISM-style
// framework (Section IV-B): global/local entropy, unique and 90%
// footprints, and totals, separately for reads and writes.
//
// It can characterize a named Table V workload's synthetic trace, or any
// binary trace file produced with the trace codec.
//
// Usage:
//
//	characterize -workload leela
//	characterize -workload cg -accesses 2000000 -save cg.trc
//	characterize -file cg.trc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nvmllc/internal/cliutil"
	"nvmllc/internal/prism"
	"nvmllc/internal/tablefmt"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "Table V workload to generate and characterize")
	file := flag.String("file", "", "binary trace file to characterize")
	save := flag.String("save", "", "write the generated trace to this file")
	threads := flag.Int("threads", 4, "threads for multi-threaded workloads")
	skipBits := flag.Int("skipbits", prism.DefaultLocalSkipBits, "low-order address bits skipped for local entropy (the paper's M)")
	format := flag.String("format", "binary", "trace file format for -file/-save: binary or text")
	window := flag.Int("window", 0, "also print the working-set-over-time curve with this window size (accesses)")
	std := cliutil.StandardFlags(nil, 1_000_000)
	flag.Parse()

	cliutil.Main("characterize", func(ctx context.Context) (err error) {
		ctx, cancel := std.WithTimeout(ctx)
		defer cancel()
		obs, err := std.StartObservability("characterize")
		if err != nil {
			return err
		}
		defer func() {
			if cerr := obs.Close(err); err == nil {
				err = cerr
			}
		}()
		return run(obs.Context(ctx), *wl, *file, *save, std.Accesses, *threads, std.Seed, *skipBits, *format, *window)
	})
}

func run(ctx context.Context, wl, file, save string, accesses, threads int, seed int64, skipBits int, format string, window int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if format != "binary" && format != "text" {
		return fmt.Errorf("unknown -format %q (want binary or text)", format)
	}
	var tr *trace.Trace
	switch {
	case wl != "" && file != "":
		return fmt.Errorf("use either -workload or -file, not both")
	case wl != "":
		p, err := workload.ByName(wl)
		if err != nil {
			return err
		}
		tr, err = workload.Generate(p, workload.Options{Accesses: accesses, Threads: threads, Seed: seed})
		if err != nil {
			return err
		}
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		if format == "text" {
			tr, err = trace.DecodeText(f)
		} else {
			tr, err = trace.Decode(f)
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -workload or -file is required")
	}

	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		encode := trace.Encode
		if format == "text" {
			encode = trace.EncodeText
		}
		if err := encode(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d accesses)\n", save, len(tr.Accesses))
	}

	feats := prism.Characterize(tr, prism.Config{LocalSkipBits: skipBits})
	reads, writes, ifetches := tr.Counts()

	t := tablefmt.New(fmt.Sprintf("Characterization of %s (%d accesses, %d threads, M=%d)",
		tr.Name, len(tr.Accesses), tr.Threads, skipBits), "metric", "reads", "writes")
	t.AddRowf("global entropy [bits]", feats.GlobalReadEntropy, feats.GlobalWriteEntropy)
	t.AddRowf("local entropy [bits]", feats.LocalReadEntropy, feats.LocalWriteEntropy)
	t.AddRowf("unique footprint", feats.UniqueReads, feats.UniqueWrites)
	t.AddRowf("90% footprint", feats.Footprint90Reads, feats.Footprint90Writes)
	t.AddRowf("total accesses", feats.TotalReads, feats.TotalWrites)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nmix: %d reads, %d writes, %d ifetches; instructions: %d\n",
		reads, writes, ifetches, tr.InstrCount)

	if window > 0 {
		ws, err := prism.WindowProfile(tr, window)
		if err != nil {
			return err
		}
		peak, err := prism.PeakWorkingSetBytes(tr, window)
		if err != nil {
			return err
		}
		wt := tablefmt.New(fmt.Sprintf("\nWorking set over time (window = %d accesses; peak %d KB)", window, peak/1024),
			"window start", "unique lines", "entropy [bits]", "write frac")
		for _, w := range ws {
			wt.AddRowf(w.StartAccess, w.UniqueLines, w.GlobalEntropy, w.WriteFrac)
		}
		return wt.Render(os.Stdout)
	}
	return nil
}
