// Command figures regenerates every table and figure of the paper's
// evaluation from this reproduction: Figures 1a/1b (fixed-capacity),
// Figures 2a/2b (fixed-area), the Section V-C core sweep, Table V (LLC
// MPKI), Table VI (workload features) and the Figure 4 correlation
// heatmaps.
//
// Every requested artifact runs through one shared experiment engine, so
// design points common to several figures (most prominently the SRAM
// baselines) simulate exactly once. SIGINT aborts the run cleanly and
// prints the partial engine statistics.
//
// Usage:
//
//	figures -all
//	figures -fig1a -fig4
//	figures -coresweep -accesses 800000
//	figures -fig1a -contention      (write-contention ablation)
//	figures -all -timeout 5m -parallelism 4
//	figures -manifest run.jsonl -debug-addr localhost:0
//
// With no artifact flag, Table V is regenerated. -manifest writes a
// JSONL run manifest (one design_point event per answered design point)
// and -debug-addr serves live /metrics, expvar and pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"nvmllc/internal/cliutil"
	"nvmllc/internal/sweep"
	"nvmllc/internal/tablefmt"
	"nvmllc/internal/workload"
)

func main() {
	var (
		all       = flag.Bool("all", false, "regenerate everything")
		fig1a     = flag.Bool("fig1a", false, "Figure 1a: fixed-capacity, single-threaded")
		fig1b     = flag.Bool("fig1b", false, "Figure 1b: fixed-capacity, multi-threaded")
		fig2a     = flag.Bool("fig2a", false, "Figure 2a: fixed-area, single-threaded")
		fig2b     = flag.Bool("fig2b", false, "Figure 2b: fixed-area, multi-threaded")
		coresweep = flag.Bool("coresweep", false, "Section V-C core sweep")
		fig4      = flag.Bool("fig4", false, "Figure 4 correlation heatmaps")
		table5    = flag.Bool("table5", false, "Table V: workload LLC MPKI")
		table6    = flag.Bool("table6", false, "Table VI: workload features")
		lifetime  = flag.Bool("lifetime", false, "endurance/lifetime study (Section VII future work)")
		predict   = flag.Bool("predict", false, "train energy predictors on non-AI workloads, predict the AI domain")
		ablations = flag.Bool("ablations", false, "design-lever ablation table (workload 'is' on Kang_P)")
		contend   = flag.Bool("contention", false, "model LLC write contention (ablation of the paper's off-critical-path writes)")
		measured  = flag.Bool("measuredfeatures", false, "use prism-measured features for Figure 4 instead of the paper's Table VI")
		progress  = flag.Duration("progress", 2*time.Second, "engine progress reporting interval on stderr (0 disables)")
	)
	std := cliutil.StandardFlags(nil, 600_000)
	std.ManifestFlag(nil)
	flag.Parse()

	cliutil.Main("figures", func(ctx context.Context) (err error) {
		ctx, cancel := std.WithTimeout(ctx)
		defer cancel()

		// The observability surface: metrics registry + root span always,
		// JSONL manifest with -manifest, live endpoint with -debug-addr.
		obs, err := std.StartObservability("figures")
		if err != nil {
			return err
		}
		defer func() {
			if cerr := obs.Close(err); err == nil {
				err = cerr
			}
		}()
		ctx = obs.Context(ctx)

		// One engine across every requested artifact: design points shared
		// between figures simulate once, and SIGINT reports partial stats.
		eng := std.Engine(obs.EngineOptions()...)
		cfg := sweep.Config{
			Opts:            workload.Options{Accesses: std.Accesses, Seed: std.Seed},
			WriteContention: *contend,
			Engine:          eng,
			Telemetry:       obs.Registry,
		}
		stopProgress := cliutil.StartProgress(eng, *progress)
		defer stopProgress()

		type job struct {
			enabled bool
			run     func(context.Context) error
		}
		jobs := []job{
			{*all || *table5, func(ctx context.Context) error { return printTableV(ctx, cfg) }},
			{*all || *table6, func(ctx context.Context) error { return printTableVI(ctx, cfg) }},
			{*all || *fig1a, func(ctx context.Context) error { return printFigure(ctx, sweep.Figure1a, cfg) }},
			{*all || *fig1b, func(ctx context.Context) error { return printFigure(ctx, sweep.Figure1b, cfg) }},
			{*all || *fig2a, func(ctx context.Context) error { return printFigure(ctx, sweep.Figure2a, cfg) }},
			{*all || *fig2b, func(ctx context.Context) error { return printFigure(ctx, sweep.Figure2b, cfg) }},
			{*all || *coresweep, func(ctx context.Context) error { return printCoreSweep(ctx, cfg) }},
			{*all || *fig4, func(ctx context.Context) error { return printFigure4(ctx, cfg, *measured) }},
			{*all || *lifetime, func(ctx context.Context) error { return printLifetime(ctx, cfg) }},
			{*all || *predict, func(ctx context.Context) error { return printPredict(ctx, cfg) }},
			{*all || *ablations, func(ctx context.Context) error { return printAblations(ctx, cfg) }},
		}
		ran := false
		for _, j := range jobs {
			if j.enabled {
				ran = true
			}
		}
		if !ran {
			// No artifact selected: default to Table V, the lightest
			// full-workload-grid artifact, so bare invocations (e.g. smoke
			// runs with -manifest) still produce design points.
			fmt.Fprintln(os.Stderr, "figures: no artifact selected, defaulting to -table5 (see -help)")
			jobs[0].enabled = true
		}
		for _, j := range jobs {
			if !j.enabled {
				continue
			}
			if err := j.run(ctx); err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					stopProgress()
					fmt.Fprintf(os.Stderr, "figures: aborted; partial stats: %s\n", eng.Stats())
				}
				return err
			}
			fmt.Println()
		}
		stopProgress()
		fmt.Fprintf(os.Stderr, "figures: %s\n", eng.Stats())
		return nil
	})
}

// printFigure renders one bar-chart figure as three tables (speedup, LLC
// energy, ED²P), each normalized to SRAM = 1.
func printFigure(ctx context.Context, gen func(context.Context, sweep.Config) (*sweep.FigureResult, error), cfg sweep.Config) error {
	fig, err := gen(ctx, cfg)
	if err != nil {
		return err
	}
	blocks := []struct {
		name string
		data [][]float64
	}{
		{"normalized speedup", fig.Speedup},
		{"normalized LLC energy", fig.Energy},
		{"normalized ED2P", fig.ED2P},
	}
	var tables []cliutil.Renderer
	for _, b := range blocks {
		t := tablefmt.New(fmt.Sprintf("%s — %s (SRAM = 1.0)", fig.Title, b.name),
			append([]string{"workload"}, fig.LLCs...)...)
		for wi, w := range fig.Workloads {
			row := []interface{}{w}
			for _, v := range b.data[wi] {
				row = append(row, v)
			}
			t.AddRowf(row...)
		}
		tables = append(tables, t)
	}
	return cliutil.RenderAll(os.Stdout, tables...)
}

func printCoreSweep(ctx context.Context, cfg sweep.Config) error {
	for _, name := range sweep.CoreSweepWorkloads {
		if err := printCoreSweepOne(ctx, name, cfg); err != nil {
			return err
		}
	}
	return nil
}

// printCoreSweepOne renders the Section V-C sweep for one workload.
func printCoreSweepOne(ctx context.Context, name string, cfg sweep.Config) error {
	res, err := sweep.CoreSweep(ctx, name, sweep.DefaultCoreCounts, cfg)
	if err != nil {
		return err
	}
	var tables []cliutil.Renderer
	for _, block := range []struct {
		label string
		data  [][]float64
	}{{"speedup", res.Speedup}, {"LLC energy", res.Energy}} {
		t := tablefmt.New(
			fmt.Sprintf("Core sweep (%s, %s, normalized to 1-core SRAM)", name, block.label),
			append([]string{"cores"}, res.LLCs...)...)
		for ci, n := range res.Cores {
			row := []interface{}{fmt.Sprintf("%d", n)}
			for _, v := range block.data[ci] {
				row = append(row, v)
			}
			t.AddRowf(row...)
		}
		tables = append(tables, t)
	}
	if err := cliutil.RenderAll(os.Stdout, tables...); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func printTableV(ctx context.Context, cfg sweep.Config) error {
	rows, err := sweep.TableV(ctx, cfg)
	if err != nil {
		return err
	}
	t := tablefmt.New("Table V: workloads and LLC MPKI (simulated vs paper)",
		"workload", "suite", "MPKI (ours)", "MPKI (paper)")
	for _, r := range rows {
		t.AddRowf(r.Workload, r.Suite, r.MPKI, r.PaperMPKI)
	}
	return t.Render(os.Stdout)
}

func printTableVI(ctx context.Context, cfg sweep.Config) error {
	rows, err := sweep.TableVI(ctx, cfg)
	if err != nil {
		return err
	}
	t := tablefmt.New(
		fmt.Sprintf("Table VI: workload features (measured on synthetic traces; paper footprints are ~%d× larger at full scale)", workload.FootprintScale),
		"workload", "H_rg", "H_rl", "H_wg", "H_wl", "r_uniq", "w_uniq", "90ft_r", "90ft_w", "r_total", "w_total")
	for _, r := range rows {
		m := r.Measured
		t.AddRowf(r.Workload, m.GlobalReadEntropy, m.LocalReadEntropy,
			m.GlobalWriteEntropy, m.LocalWriteEntropy,
			m.UniqueReads, m.UniqueWrites, m.Footprint90Reads, m.Footprint90Writes,
			m.TotalReads, m.TotalWrites)
	}
	tp := tablefmt.New("Table VI: paper values",
		"workload", "H_rg", "H_rl", "H_wg", "H_wl", "r_uniq", "w_uniq", "90ft_r", "90ft_w", "r_total", "w_total")
	for _, r := range rows {
		p := r.Paper
		tp.AddRowf(r.Workload, p.GlobalReadEntropy, p.LocalReadEntropy,
			p.GlobalWriteEntropy, p.LocalWriteEntropy,
			p.UniqueReads, p.UniqueWrites, p.Footprint90Reads, p.Footprint90Writes,
			p.TotalReads, p.TotalWrites)
	}
	return cliutil.RenderAll(os.Stdout, t, tp)
}

func printFigure4(ctx context.Context, cfg sweep.Config, measured bool) error {
	f4 := sweep.Figure4Config{Config: cfg}
	if measured {
		f4.Source = sweep.MeasuredFeatures
	}
	panels, err := sweep.Figure4(ctx, f4)
	if err != nil {
		return err
	}
	labels := []string{"(a)", "(b)", "(c)", "(d)", "(e)", "(f)"}
	var maps []cliutil.Renderer
	for i, p := range panels {
		h := p.Heatmap()
		if i < len(labels) {
			h.Title = fmt.Sprintf("Figure 4%s: |Pearson r|, %s, AI workloads", labels[i], h.Title)
		}
		maps = append(maps, h)
	}
	return cliutil.RenderAll(os.Stdout, maps...)
}

func printLifetime(ctx context.Context, cfg sweep.Config) error {
	study, err := sweep.Lifetime(ctx, cfg, nil)
	if err != nil {
		return err
	}
	t := tablefmt.New("LLC lifetime projection (first-cell-failure model; intra-set wear leveling per WriteSmoothing [20])",
		"workload", "LLC", "class", "hottest-line wr/s", "raw years", "leveled years", "imbalance", "viable 5y")
	for _, r := range study.Rows {
		t.AddRowf(r.Workload, r.LLC, r.Class.String(), r.HottestLineWritesPerSec,
			r.RawYears, r.LeveledYears, r.ImbalanceFactor,
			fmt.Sprintf("%v", r.Viable(5)))
	}
	renderers := []cliutil.Renderer{t}
	for _, p := range study.Panels {
		h := p.Heatmap()
		h.Title = "Wear-rate correlation with workload features: " + h.Title
		h.Cells = h.Cells[:1]
		h.RowNames = []string{"wear rate"}
		renderers = append(renderers, h)
	}
	return cliutil.RenderAll(os.Stdout, renderers...)
}

func printPredict(ctx context.Context, cfg sweep.Config) error {
	study, err := sweep.Predict(ctx, cfg)
	if err != nil {
		return err
	}
	t := tablefmt.New("Energy prediction: models trained on the 13 non-AI workloads, evaluated on the unseen AI domain (SRAM-normalized energies)",
		"LLC", "workload", "predictor feature", "predicted", "simulated", "rel. err")
	for _, r := range study.Rows {
		t.AddRowf(r.LLC, r.Workload, r.Feature, r.Predicted, r.Simulated, r.RelErr)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("mean relative error: %.2f\n", study.MeanRelErr)
	return nil
}

func printAblations(ctx context.Context, cfg sweep.Config) error {
	rows, err := sweep.AblationSuite(ctx, "is", "Kang_P", cfg)
	if err != nil {
		return err
	}
	t := tablefmt.New("Design-lever ablations: is on Kang_P (PCRAM)",
		"configuration", "time [ms]", "dyn energy [mJ]", "total energy [mJ]", "LLC writes", "LLC hits")
	for _, r := range rows {
		t.AddRowf(r.Name, r.TimeMS, r.DynEnergyMJ, r.TotalEnergyMJ, r.LLCWrites, r.Hits)
	}
	return t.Render(os.Stdout)
}
