// Command figures regenerates every table and figure of the paper's
// evaluation from this reproduction: Figures 1a/1b (fixed-capacity),
// Figures 2a/2b (fixed-area), the Section V-C core sweep, Table V (LLC
// MPKI), Table VI (workload features), the Figure 4 correlation
// heatmaps, the lifetime/prediction/ablation studies and the
// wear-driven degradation sweep.
//
// Artifacts are selected by registry name through -artifact (see -help
// for the list); the historical one-flag-per-artifact spellings are kept
// as deprecated aliases. Every requested artifact runs through one
// shared experiment engine, so design points common to several figures
// (most prominently the SRAM baselines) simulate exactly once. SIGINT
// aborts the run cleanly and prints the partial engine statistics.
//
// Usage:
//
//	figures -all
//	figures -artifact fig1a,fig4
//	figures -artifact degradation
//	figures -coresweep -accesses 800000      (deprecated alias)
//	figures -artifact fig1a -contention      (write-contention ablation)
//	figures -all -timeout 5m -parallelism 4
//	figures -manifest run.jsonl -debug-addr localhost:0
//
// With no artifact selected, Table V is regenerated. -manifest writes a
// JSONL run manifest (one design_point event per answered design point)
// and -debug-addr serves live /metrics, expvar and pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"nvmllc/internal/cliutil"
	"nvmllc/internal/sweep"
	"nvmllc/internal/workload"
)

func main() {
	var (
		all      = flag.Bool("all", false, "regenerate everything")
		contend  = flag.Bool("contention", false, "model LLC write contention (ablation of the paper's off-critical-path writes)")
		measured = flag.Bool("measuredfeatures", false, "use prism-measured features for Figure 4 instead of the paper's Table VI")
		progress = flag.Duration("progress", 2*time.Second, "engine progress reporting interval on stderr (0 disables)")
	)
	artifactSel := cliutil.ArtifactFlag(nil, sweep.ArtifactNames())
	// The pre-registry spellings, kept as deprecated aliases for -artifact.
	aliases := map[string]*bool{}
	for _, a := range []struct{ flagName, artifact, help string }{
		{"table5", "table5", "Table V: workload LLC MPKI"},
		{"table6", "table6", "Table VI: workload features"},
		{"fig1a", "fig1a", "Figure 1a: fixed-capacity, single-threaded"},
		{"fig1b", "fig1b", "Figure 1b: fixed-capacity, multi-threaded"},
		{"fig2a", "fig2a", "Figure 2a: fixed-area, single-threaded"},
		{"fig2b", "fig2b", "Figure 2b: fixed-area, multi-threaded"},
		{"coresweep", "coresweep", "Section V-C core sweep"},
		{"fig4", "fig4", "Figure 4 correlation heatmaps"},
		{"lifetime", "lifetime", "endurance/lifetime study (Section VII future work)"},
		{"predict", "predict", "train energy predictors on non-AI workloads, predict the AI domain"},
		{"ablations", "ablations", "design-lever ablation table (workload 'is' on Kang_P)"},
	} {
		aliases[a.artifact] = flag.Bool(a.flagName, false,
			fmt.Sprintf("%s (deprecated: use -artifact %s)", a.help, a.artifact))
	}
	std := cliutil.StandardFlags(nil, 600_000)
	std.ManifestFlag(nil)
	flag.Parse()

	cliutil.Main("figures", func(ctx context.Context) (err error) {
		ctx, cancel := std.WithTimeout(ctx)
		defer cancel()

		// The observability surface: metrics registry + root span always,
		// JSONL manifest with -manifest, live endpoint with -debug-addr.
		obs, err := std.StartObservability("figures")
		if err != nil {
			return err
		}
		defer func() {
			if cerr := obs.Close(err); err == nil {
				err = cerr
			}
		}()
		ctx = obs.Context(ctx)

		// One engine across every requested artifact: design points shared
		// between figures simulate once, and SIGINT reports partial stats.
		eng := std.Engine(obs.EngineOptions()...)
		obs.TrackEngine(eng)
		cfg := sweep.Config{
			Opts:            workload.Options{Accesses: std.Accesses, Seed: std.Seed},
			WriteContention: *contend,
			Engine:          eng,
			Telemetry:       obs.Registry,
		}
		stopProgress := cliutil.StartProgress(eng, *progress)
		defer stopProgress()

		aliasOn := map[string]bool{}
		for name, on := range aliases {
			if *on {
				aliasOn[name] = true
				fmt.Fprintf(os.Stderr, "figures: -%s is deprecated; use -artifact %s\n", name, name)
			}
		}
		run, defaulted := selectArtifacts(artifactSel.Names(), aliasOn, *all, *measured)
		if defaulted {
			fmt.Fprintln(os.Stderr, "figures: no artifact selected, defaulting to -artifact table5 (see -help)")
		}

		for _, name := range run {
			if err := renderArtifact(ctx, name, cfg); err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					stopProgress()
					fmt.Fprintf(os.Stderr, "figures: aborted; partial stats: %s\n", eng.Stats())
				}
				return err
			}
			fmt.Println()
		}
		stopProgress()
		fmt.Fprintf(os.Stderr, "figures: %s\n", eng.Stats())
		return nil
	})
}

// selectArtifacts resolves every selection surface — -artifact names,
// the deprecated alias flags, -all and -measuredfeatures — into the
// run list, deduplicated and in registry order. Naming an artifact
// through both a deprecated alias and -artifact selects it exactly
// once: selection is a set, and the registry iteration below emits each
// member at most once regardless of how many flags asked for it.
// defaulted reports that nothing was selected and table5 (the lightest
// full-workload-grid artifact) was substituted, so bare invocations
// still produce design points.
func selectArtifacts(names []string, aliases map[string]bool, all, measured bool) (run []string, defaulted bool) {
	selected := map[string]bool{}
	for _, name := range names {
		selected[name] = true
	}
	for name, on := range aliases {
		if on {
			selected[name] = true
		}
	}
	if all {
		for _, a := range sweep.Artifacts() {
			// -all keeps the paper-feature Figure 4; the measured
			// variant is an explicit opt-in (below or by name).
			if a.Name != "fig4measured" {
				selected[a.Name] = true
			}
		}
	}
	if measured && selected["fig4"] {
		delete(selected, "fig4")
		selected["fig4measured"] = true
	}
	if len(selected) == 0 {
		selected["table5"] = true
		defaulted = true
	}
	for _, a := range sweep.Artifacts() {
		if selected[a.Name] {
			run = append(run, a.Name)
		}
	}
	return run, defaulted
}

// renderArtifact runs one registry artifact and prints its renderers.
func renderArtifact(ctx context.Context, name string, cfg sweep.Config) error {
	res, err := sweep.Run(ctx, name, cfg)
	if err != nil {
		return err
	}
	renderers := make([]cliutil.Renderer, len(res.Renderers))
	for i, r := range res.Renderers {
		renderers[i] = r
	}
	return cliutil.RenderAll(os.Stdout, renderers...)
}
