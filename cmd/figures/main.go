// Command figures regenerates every table and figure of the paper's
// evaluation from this reproduction: Figures 1a/1b (fixed-capacity),
// Figures 2a/2b (fixed-area), the Section V-C core sweep, Table V (LLC
// MPKI), Table VI (workload features) and the Figure 4 correlation
// heatmaps.
//
// Usage:
//
//	figures -all
//	figures -fig1a -fig4
//	figures -coresweep -accesses 800000
//	figures -fig1a -contention      (write-contention ablation)
package main

import (
	"flag"
	"fmt"
	"os"

	"nvmllc/internal/sweep"
	"nvmllc/internal/tablefmt"
	"nvmllc/internal/workload"
)

func main() {
	var (
		all       = flag.Bool("all", false, "regenerate everything")
		fig1a     = flag.Bool("fig1a", false, "Figure 1a: fixed-capacity, single-threaded")
		fig1b     = flag.Bool("fig1b", false, "Figure 1b: fixed-capacity, multi-threaded")
		fig2a     = flag.Bool("fig2a", false, "Figure 2a: fixed-area, single-threaded")
		fig2b     = flag.Bool("fig2b", false, "Figure 2b: fixed-area, multi-threaded")
		coresweep = flag.Bool("coresweep", false, "Section V-C core sweep")
		fig4      = flag.Bool("fig4", false, "Figure 4 correlation heatmaps")
		table5    = flag.Bool("table5", false, "Table V: workload LLC MPKI")
		table6    = flag.Bool("table6", false, "Table VI: workload features")
		lifetime  = flag.Bool("lifetime", false, "endurance/lifetime study (Section VII future work)")
		predict   = flag.Bool("predict", false, "train energy predictors on non-AI workloads, predict the AI domain")
		ablations = flag.Bool("ablations", false, "design-lever ablation table (workload 'is' on Kang_P)")
		accesses  = flag.Int("accesses", 600_000, "base trace length before per-workload scaling")
		seed      = flag.Int64("seed", 1, "trace generation seed")
		contend   = flag.Bool("contention", false, "model LLC write contention (ablation of the paper's off-critical-path writes)")
		measured  = flag.Bool("measuredfeatures", false, "use prism-measured features for Figure 4 instead of the paper's Table VI")
	)
	flag.Parse()

	cfg := sweep.Config{
		Opts:            workload.Options{Accesses: *accesses, Seed: *seed},
		WriteContention: *contend,
	}
	type job struct {
		enabled bool
		run     func() error
	}
	jobs := []job{
		{*all || *table5, func() error { return printTableV(cfg) }},
		{*all || *table6, func() error { return printTableVI(cfg) }},
		{*all || *fig1a, func() error { return printFigure(sweep.Figure1a, cfg) }},
		{*all || *fig1b, func() error { return printFigure(sweep.Figure1b, cfg) }},
		{*all || *fig2a, func() error { return printFigure(sweep.Figure2a, cfg) }},
		{*all || *fig2b, func() error { return printFigure(sweep.Figure2b, cfg) }},
		{*all || *coresweep, func() error { return printCoreSweep(cfg) }},
		{*all || *fig4, func() error { return printFigure4(cfg, *measured) }},
		{*all || *lifetime, func() error { return printLifetime(cfg) }},
		{*all || *predict, func() error { return printPredict(cfg) }},
		{*all || *ablations, func() error { return printAblations(cfg) }},
	}
	ran := false
	for _, j := range jobs {
		if !j.enabled {
			continue
		}
		ran = true
		if err := j.run(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// printFigure renders one bar-chart figure as three tables (speedup, LLC
// energy, ED²P), each normalized to SRAM = 1.
func printFigure(gen func(sweep.Config) (*sweep.FigureResult, error), cfg sweep.Config) error {
	fig, err := gen(cfg)
	if err != nil {
		return err
	}
	blocks := []struct {
		name string
		data [][]float64
	}{
		{"normalized speedup", fig.Speedup},
		{"normalized LLC energy", fig.Energy},
		{"normalized ED2P", fig.ED2P},
	}
	for _, b := range blocks {
		t := tablefmt.New(fmt.Sprintf("%s — %s (SRAM = 1.0)", fig.Title, b.name),
			append([]string{"workload"}, fig.LLCs...)...)
		for wi, w := range fig.Workloads {
			row := []interface{}{w}
			for _, v := range b.data[wi] {
				row = append(row, v)
			}
			t.AddRowf(row...)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func printCoreSweep(cfg sweep.Config) error {
	for _, name := range sweep.CoreSweepWorkloads {
		if err := printCoreSweepOne(name, cfg); err != nil {
			return err
		}
	}
	return nil
}

// printCoreSweepOne renders the Section V-C sweep for one workload.
func printCoreSweepOne(name string, cfg sweep.Config) error {
	res, err := sweep.CoreSweep(name, sweep.DefaultCoreCounts, cfg)
	if err != nil {
		return err
	}
	for _, block := range []struct {
		label string
		data  [][]float64
	}{{"speedup", res.Speedup}, {"LLC energy", res.Energy}} {
		t := tablefmt.New(
			fmt.Sprintf("Core sweep (%s, %s, normalized to 1-core SRAM)", name, block.label),
			append([]string{"cores"}, res.LLCs...)...)
		for ci, n := range res.Cores {
			row := []interface{}{fmt.Sprintf("%d", n)}
			for _, v := range block.data[ci] {
				row = append(row, v)
			}
			t.AddRowf(row...)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func printTableV(cfg sweep.Config) error {
	rows, err := sweep.TableV(cfg)
	if err != nil {
		return err
	}
	t := tablefmt.New("Table V: workloads and LLC MPKI (simulated vs paper)",
		"workload", "suite", "MPKI (ours)", "MPKI (paper)")
	for _, r := range rows {
		t.AddRowf(r.Workload, r.Suite, r.MPKI, r.PaperMPKI)
	}
	return t.Render(os.Stdout)
}

func printTableVI(cfg sweep.Config) error {
	rows, err := sweep.TableVI(cfg)
	if err != nil {
		return err
	}
	t := tablefmt.New(
		fmt.Sprintf("Table VI: workload features (measured on synthetic traces; paper footprints are ~%d× larger at full scale)", workload.FootprintScale),
		"workload", "H_rg", "H_rl", "H_wg", "H_wl", "r_uniq", "w_uniq", "90ft_r", "90ft_w", "r_total", "w_total")
	for _, r := range rows {
		m := r.Measured
		t.AddRowf(r.Workload, m.GlobalReadEntropy, m.LocalReadEntropy,
			m.GlobalWriteEntropy, m.LocalWriteEntropy,
			m.UniqueReads, m.UniqueWrites, m.Footprint90Reads, m.Footprint90Writes,
			m.TotalReads, m.TotalWrites)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	tp := tablefmt.New("Table VI: paper values",
		"workload", "H_rg", "H_rl", "H_wg", "H_wl", "r_uniq", "w_uniq", "90ft_r", "90ft_w", "r_total", "w_total")
	for _, r := range rows {
		p := r.Paper
		tp.AddRowf(r.Workload, p.GlobalReadEntropy, p.LocalReadEntropy,
			p.GlobalWriteEntropy, p.LocalWriteEntropy,
			p.UniqueReads, p.UniqueWrites, p.Footprint90Reads, p.Footprint90Writes,
			p.TotalReads, p.TotalWrites)
	}
	return tp.Render(os.Stdout)
}

func printFigure4(cfg sweep.Config, measured bool) error {
	f4 := sweep.Figure4Config{Config: cfg}
	if measured {
		f4.Source = sweep.MeasuredFeatures
	}
	panels, err := sweep.Figure4(f4)
	if err != nil {
		return err
	}
	labels := []string{"(a)", "(b)", "(c)", "(d)", "(e)", "(f)"}
	for i, p := range panels {
		h := p.Heatmap()
		if i < len(labels) {
			h.Title = fmt.Sprintf("Figure 4%s: |Pearson r|, %s, AI workloads", labels[i], h.Title)
		}
		if err := h.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func printLifetime(cfg sweep.Config) error {
	study, err := sweep.Lifetime(cfg, nil)
	if err != nil {
		return err
	}
	t := tablefmt.New("LLC lifetime projection (first-cell-failure model; intra-set wear leveling per WriteSmoothing [20])",
		"workload", "LLC", "class", "hottest-line wr/s", "raw years", "leveled years", "imbalance", "viable 5y")
	for _, r := range study.Rows {
		t.AddRowf(r.Workload, r.LLC, r.Class.String(), r.HottestLineWritesPerSec,
			r.RawYears, r.LeveledYears, r.ImbalanceFactor,
			fmt.Sprintf("%v", r.Viable(5)))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	for _, p := range study.Panels {
		h := p.Heatmap()
		h.Title = "Wear-rate correlation with workload features: " + h.Title
		h.RowNames = []string{"wear rate", "(dup)"}
		h.Cells = h.Cells[:1]
		h.RowNames = h.RowNames[:1]
		if err := h.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func printPredict(cfg sweep.Config) error {
	study, err := sweep.Predict(cfg)
	if err != nil {
		return err
	}
	t := tablefmt.New("Energy prediction: models trained on the 13 non-AI workloads, evaluated on the unseen AI domain (SRAM-normalized energies)",
		"LLC", "workload", "predictor feature", "predicted", "simulated", "rel. err")
	for _, r := range study.Rows {
		t.AddRowf(r.LLC, r.Workload, r.Feature, r.Predicted, r.Simulated, r.RelErr)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("mean relative error: %.2f\n", study.MeanRelErr)
	return nil
}

func printAblations(cfg sweep.Config) error {
	rows, err := sweep.AblationSuite("is", "Kang_P", cfg)
	if err != nil {
		return err
	}
	t := tablefmt.New("Design-lever ablations: is on Kang_P (PCRAM)",
		"configuration", "time [ms]", "dyn energy [mJ]", "total energy [mJ]", "LLC writes", "LLC hits")
	for _, r := range rows {
		t.AddRowf(r.Name, r.TimeMS, r.DynEnergyMJ, r.TotalEnergyMJ, r.LLCWrites, r.Hits)
	}
	return t.Render(os.Stdout)
}
