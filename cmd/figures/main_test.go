package main

import (
	"context"
	"os"
	"strings"
	"testing"

	"nvmllc/internal/cliutil"
	"nvmllc/internal/sweep"
	"nvmllc/internal/workload"
)

func smallCfg() sweep.Config {
	return sweep.Config{Opts: workload.Options{Accesses: 20000, Seed: 2}}
}

func TestArtifactTableV(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "table5", smallCfg()) })
	if !strings.Contains(out, "Table V") || !strings.Contains(out, "deepsjeng") {
		t.Error("Table V output malformed")
	}
}

func TestArtifactTableVI(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "table6", smallCfg()) })
	if !strings.Contains(out, "Table VI") || !strings.Contains(out, "paper values") {
		t.Error("Table VI output malformed")
	}
}

func TestArtifactFigure(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "fig1a", smallCfg()) })
	for _, want := range []string{"Figure 1a", "normalized speedup", "normalized LLC energy", "normalized ED2P"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
}

func TestArtifactFigure4(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "fig4", smallCfg()) })
	if !strings.Contains(out, "Figure 4(a)") || !strings.Contains(out, "H_wg") {
		t.Error("Figure 4 output malformed")
	}
}

func TestArtifactLifetime(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "lifetime", smallCfg()) })
	for _, want := range []string{"lifetime projection", "Kang_P", "Wear-rate correlation"} {
		if !strings.Contains(out, want) {
			t.Errorf("lifetime output missing %q", want)
		}
	}
}

func TestArtifactPredict(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "predict", smallCfg()) })
	for _, want := range []string{"Energy prediction", "deepsjeng", "mean relative error"} {
		if !strings.Contains(out, want) {
			t.Errorf("predict output missing %q", want)
		}
	}
}

func TestCoreSweepRenderers(t *testing.T) {
	// The full coresweep artifact runs six workloads at six core counts;
	// exercise the same rendering on one small sweep instead.
	out := capture(t, func() error {
		res, err := sweep.CoreSweep(context.Background(), "ft", []int{1, 2}, smallCfg())
		if err != nil {
			return err
		}
		renderers := sweep.CoreSweepRenderers("ft", res)
		out := make([]cliutil.Renderer, len(renderers))
		for i, r := range renderers {
			out[i] = r
		}
		return cliutil.RenderAll(os.Stdout, out...)
	})
	if !strings.Contains(out, "Core sweep (ft") {
		t.Errorf("core sweep output malformed:\n%s", out[:min(200, len(out))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestArtifactAblations(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "ablations", smallCfg()) })
	for _, want := range []string{"Design-lever ablations", "dead-block bypass", "hybrid"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestUnknownArtifact(t *testing.T) {
	err := renderArtifact(context.Background(), "nope", smallCfg())
	if err == nil || !strings.Contains(err.Error(), "unknown artifact") {
		t.Errorf("want unknown-artifact error, got %v", err)
	}
}
