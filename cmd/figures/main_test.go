package main

import (
	"context"
	"strings"
	"testing"

	"nvmllc/internal/sweep"
	"nvmllc/internal/workload"
)

func smallCfg() sweep.Config {
	return sweep.Config{Opts: workload.Options{Accesses: 20000, Seed: 2}}
}

func TestPrintTableV(t *testing.T) {
	out := capture(t, func() error { return printTableV(context.Background(), smallCfg()) })
	if !strings.Contains(out, "Table V") || !strings.Contains(out, "deepsjeng") {
		t.Error("Table V output malformed")
	}
}

func TestPrintTableVI(t *testing.T) {
	out := capture(t, func() error { return printTableVI(context.Background(), smallCfg()) })
	if !strings.Contains(out, "Table VI") || !strings.Contains(out, "paper values") {
		t.Error("Table VI output malformed")
	}
}

func TestPrintFigure(t *testing.T) {
	out := capture(t, func() error { return printFigure(context.Background(), sweep.Figure1a, smallCfg()) })
	for _, want := range []string{"Figure 1a", "normalized speedup", "normalized LLC energy", "normalized ED2P"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
}

func TestPrintFigure4(t *testing.T) {
	out := capture(t, func() error { return printFigure4(context.Background(), smallCfg(), false) })
	if !strings.Contains(out, "Figure 4(a)") || !strings.Contains(out, "H_wg") {
		t.Error("Figure 4 output malformed")
	}
}

func TestPrintLifetime(t *testing.T) {
	out := capture(t, func() error { return printLifetime(context.Background(), smallCfg()) })
	for _, want := range []string{"lifetime projection", "Kang_P", "Wear-rate correlation"} {
		if !strings.Contains(out, want) {
			t.Errorf("lifetime output missing %q", want)
		}
	}
}

func TestPrintPredict(t *testing.T) {
	out := capture(t, func() error { return printPredict(context.Background(), smallCfg()) })
	for _, want := range []string{"Energy prediction", "deepsjeng", "mean relative error"} {
		if !strings.Contains(out, want) {
			t.Errorf("predict output missing %q", want)
		}
	}
}

func TestPrintCoreSweepOne(t *testing.T) {
	// Exercise the core-sweep printer on a single small sweep via the
	// sweep API path used by -coresweep.
	out := capture(t, func() error {
		res, err := sweep.CoreSweep(context.Background(), "ft", []int{1, 2}, smallCfg())
		if err != nil {
			return err
		}
		_ = res
		return printCoreSweepOne(context.Background(), "ft", smallCfg())
	})
	if !strings.Contains(out, "Core sweep (ft") {
		t.Errorf("core sweep output malformed:\n%s", out[:min(200, len(out))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPrintAblations(t *testing.T) {
	out := capture(t, func() error { return printAblations(context.Background(), smallCfg()) })
	for _, want := range []string{"Design-lever ablations", "dead-block bypass", "hybrid"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}
