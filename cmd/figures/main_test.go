package main

import (
	"context"
	"os"
	"strings"
	"testing"

	"nvmllc/internal/cliutil"
	"nvmllc/internal/sweep"
	"nvmllc/internal/workload"
)

func smallCfg() sweep.Config {
	return sweep.Config{Opts: workload.Options{Accesses: 20000, Seed: 2}}
}

func TestArtifactTableV(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "table5", smallCfg()) })
	if !strings.Contains(out, "Table V") || !strings.Contains(out, "deepsjeng") {
		t.Error("Table V output malformed")
	}
}

func TestArtifactTableVI(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "table6", smallCfg()) })
	if !strings.Contains(out, "Table VI") || !strings.Contains(out, "paper values") {
		t.Error("Table VI output malformed")
	}
}

func TestArtifactFigure(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "fig1a", smallCfg()) })
	for _, want := range []string{"Figure 1a", "normalized speedup", "normalized LLC energy", "normalized ED2P"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
}

func TestArtifactFigure4(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "fig4", smallCfg()) })
	if !strings.Contains(out, "Figure 4(a)") || !strings.Contains(out, "H_wg") {
		t.Error("Figure 4 output malformed")
	}
}

func TestArtifactLifetime(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "lifetime", smallCfg()) })
	for _, want := range []string{"lifetime projection", "Kang_P", "Wear-rate correlation"} {
		if !strings.Contains(out, want) {
			t.Errorf("lifetime output missing %q", want)
		}
	}
}

func TestArtifactPredict(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "predict", smallCfg()) })
	for _, want := range []string{"Energy prediction", "deepsjeng", "mean relative error"} {
		if !strings.Contains(out, want) {
			t.Errorf("predict output missing %q", want)
		}
	}
}

func TestCoreSweepRenderers(t *testing.T) {
	// The full coresweep artifact runs six workloads at six core counts;
	// exercise the same rendering on one small sweep instead.
	out := capture(t, func() error {
		res, err := sweep.CoreSweep(context.Background(), "ft", []int{1, 2}, smallCfg())
		if err != nil {
			return err
		}
		renderers := sweep.CoreSweepRenderers("ft", res)
		out := make([]cliutil.Renderer, len(renderers))
		for i, r := range renderers {
			out[i] = r
		}
		return cliutil.RenderAll(os.Stdout, out...)
	})
	if !strings.Contains(out, "Core sweep (ft") {
		t.Errorf("core sweep output malformed:\n%s", out[:min(200, len(out))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestArtifactAblations(t *testing.T) {
	out := capture(t, func() error { return renderArtifact(context.Background(), "ablations", smallCfg()) })
	for _, want := range []string{"Design-lever ablations", "dead-block bypass", "hybrid"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

// TestSelectArtifactsExactlyOnce pins the alias-dedup contract: an
// artifact named by both its deprecated alias flag and -artifact runs
// exactly once, and the run list follows registry order.
func TestSelectArtifactsExactlyOnce(t *testing.T) {
	run, defaulted := selectArtifacts(
		[]string{"fig1a", "table5"},    // -artifact fig1a,table5
		map[string]bool{"fig1a": true}, // -fig1a (deprecated alias, same artifact)
		false, false,
	)
	if defaulted {
		t.Error("explicit selection reported as defaulted")
	}
	counts := map[string]int{}
	for _, name := range run {
		counts[name]++
	}
	if counts["fig1a"] != 1 {
		t.Errorf("fig1a selected by alias AND -artifact appears %d times, want exactly 1 (run=%v)", counts["fig1a"], run)
	}
	if counts["table5"] != 1 || len(run) != 2 {
		t.Errorf("run = %v, want exactly [table5 fig1a] in registry order", run)
	}
	// Registry order puts table5 before fig1a.
	if run[0] != "table5" || run[1] != "fig1a" {
		t.Errorf("run order = %v, want registry order [table5 fig1a]", run)
	}
}

// TestSelectArtifactsSurfaces covers the remaining selection logic:
// -all (minus the opt-in measured Figure 4), the measured swap, and the
// table5 default.
func TestSelectArtifactsSurfaces(t *testing.T) {
	run, defaulted := selectArtifacts(nil, nil, false, false)
	if !defaulted || len(run) != 1 || run[0] != "table5" {
		t.Errorf("empty selection: run=%v defaulted=%v, want [table5] true", run, defaulted)
	}

	run, _ = selectArtifacts(nil, nil, true, false)
	seen := map[string]bool{}
	for _, name := range run {
		if seen[name] {
			t.Errorf("-all selected %s twice", name)
		}
		seen[name] = true
	}
	if seen["fig4measured"] {
		t.Error("-all must not select the opt-in fig4measured")
	}
	if !seen["fig4"] || !seen["table5"] {
		t.Errorf("-all missing core artifacts: %v", run)
	}

	run, _ = selectArtifacts([]string{"fig4"}, nil, false, true)
	if len(run) != 1 || run[0] != "fig4measured" {
		t.Errorf("-measuredfeatures swap: run=%v, want [fig4measured]", run)
	}
}

// TestSelectedArtifactRendersOnce closes the loop at the execution
// layer: driving the selection through renderArtifact, the doubly
// selected artifact prints its output exactly once.
func TestSelectedArtifactRendersOnce(t *testing.T) {
	run, _ := selectArtifacts([]string{"table5"}, map[string]bool{"table5": true}, false, false)
	out := capture(t, func() error {
		for _, name := range run {
			if err := renderArtifact(context.Background(), name, smallCfg()); err != nil {
				return err
			}
		}
		return nil
	})
	if got := strings.Count(out, "Table V:"); got != 1 {
		t.Errorf("doubly selected table5 rendered %d times, want exactly 1", got)
	}
}

func TestUnknownArtifact(t *testing.T) {
	err := renderArtifact(context.Background(), "nope", smallCfg())
	if err == nil || !strings.Contains(err.Error(), "unknown artifact") {
		t.Errorf("want unknown-artifact error, got %v", err)
	}
}
