package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDaemonEndToEnd is the in-process smoke test: boot the daemon on a
// free port with an on-disk cache, submit a small job, poll it to
// completion, fetch the result, scrape /metrics, then shut down and
// restart against the warm cache — the same job must come back without
// re-simulation.
func TestDaemonEndToEnd(t *testing.T) {
	cacheDir := t.TempDir()
	boot := func(body func(base string)) error {
		ctx, cancel := context.WithCancel(context.Background())
		addrCh := make(chan string, 1)
		errCh := make(chan error, 1)
		go func() {
			errCh <- run(ctx, options{
				addr:         "localhost:0",
				cacheDir:     cacheDir,
				queueDepth:   8,
				drainTimeout: 30 * time.Second,
				accesses:     20000,
				listening:    func(a string) { addrCh <- a },
			})
		}()
		var base string
		select {
		case a := <-addrCh:
			base = "http://" + a
		case err := <-errCh:
			cancel()
			return fmt.Errorf("daemon died during boot: %v", err)
		case <-time.After(10 * time.Second):
			cancel()
			return fmt.Errorf("daemon never came up")
		}
		body(base)
		cancel()
		select {
		case err := <-errCh:
			return err
		case <-time.After(60 * time.Second):
			return fmt.Errorf("daemon did not drain after cancel")
		}
	}

	spec := `{"workload":"bzip2","llc":"SRAM","accesses":20000}`
	runJob := func(t *testing.T, base string) {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			ID     string `json:"id"`
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d (%s)", resp.StatusCode, v.Error)
		}
		deadline := time.Now().Add(60 * time.Second)
		for v.Status != "done" && v.Status != "failed" {
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", v.ID, v.Status)
			}
			time.Sleep(20 * time.Millisecond)
			pr, err := http.Get(base + "/v1/jobs/" + v.ID)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(pr.Body).Decode(&v); err != nil {
				t.Fatal(err)
			}
			pr.Body.Close()
		}
		if v.Status != "done" {
			t.Fatalf("job failed: %s", v.Error)
		}
		rr, err := http.Get(base + "/v1/jobs/" + v.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(rr.Body)
		rr.Body.Close()
		if rr.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte(`"result"`)) {
			t.Fatalf("result: HTTP %d, body %.200s", rr.StatusCode, raw)
		}
	}

	engineStats := func(t *testing.T, base string) (simulated, cached float64) {
		t.Helper()
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats struct {
			Engine struct {
				Simulated float64 `json:"Simulated"`
				Cached    float64 `json:"Cached"`
			} `json:"engine"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		return stats.Engine.Simulated, stats.Engine.Cached
	}

	// Generation 1: cold cache — the job simulates; /metrics serves the
	// engine and serving instruments.
	if err := boot(func(base string) {
		runJob(t, base)
		if sim, _ := engineStats(t, base); sim != 1 {
			t.Errorf("cold daemon simulated %v jobs, want 1", sim)
		}
		mr, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(mr.Body)
		mr.Body.Close()
		for _, metric := range []string{"serve_jobs_total", "engine_jobs_total", "serve_job_latency_ns"} {
			if !bytes.Contains(raw, []byte(metric)) {
				t.Errorf("/metrics missing %s", metric)
			}
		}
	}); err != nil {
		t.Fatalf("generation 1: %v", err)
	}

	// Generation 2: warm restart — same job, zero simulations.
	if err := boot(func(base string) {
		runJob(t, base)
		if sim, cached := engineStats(t, base); sim != 0 || cached != 1 {
			t.Errorf("warm daemon: simulated=%v cached=%v, want 0/1", sim, cached)
		}
	}); err != nil {
		t.Fatalf("generation 2: %v", err)
	}
}
