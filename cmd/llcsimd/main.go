// Command llcsimd is the long-running simulation service: an HTTP
// daemon accepting simulation and artifact jobs (single and batch),
// executing them asynchronously through one shared experiment engine,
// and answering submit → job id → poll → result.
//
//	llcsimd -addr localhost:8080 -cache-dir /var/cache/nvmllc
//
// All submissions share one engine, so concurrent identical design
// points coalesce into a single simulation, and the optional on-disk
// result cache makes computed design points survive restarts: a warm
// daemon answers previously seen jobs with zero re-simulation. The job
// queue is bounded — overflow is surfaced as HTTP 429 backpressure —
// and SIGINT/SIGTERM drain in-flight work before exit (a second
// deadline, -drain-timeout, bounds how long the drain may take).
//
// Besides the job API (POST /v1/jobs, POST /v1/jobs/batch, GET
// /v1/jobs/{id}, GET /v1/jobs/{id}/result, GET /v1/stats, GET
// /healthz), the daemon serves the standard observability surface on
// the same address: /metrics, /metrics.json, /debug/vars, /debug/pprof
// and the live /debug/timeline dashboard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"nvmllc/internal/cliutil"
	"nvmllc/internal/engine"
	"nvmllc/internal/serve"
	"nvmllc/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address (host:port; port 0 picks a free one)")
	cacheDir := flag.String("cache-dir", "", "persistent result cache directory (empty disables; created if missing)")
	queueDepth := flag.Int("queue", 64, "bound on admitted-but-unstarted jobs; a full queue answers 429")
	workers := flag.Int("workers", 0, "job executor goroutines (0 = engine parallelism)")
	parallelism := flag.Int("parallelism", 0, "max concurrent simulations inside the engine (0 = GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job execution cap (0 = none; specs may set timeout_ms)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before aborting them")
	accesses := flag.Int("accesses", 100_000, "default trace length for specs that omit accesses")
	flag.Parse()

	cliutil.Main("llcsimd", func(ctx context.Context) error {
		return run(ctx, options{
			addr:         *addr,
			cacheDir:     *cacheDir,
			queueDepth:   *queueDepth,
			workers:      *workers,
			parallelism:  *parallelism,
			jobTimeout:   *jobTimeout,
			drainTimeout: *drainTimeout,
			accesses:     *accesses,
		})
	})
}

type options struct {
	addr         string
	cacheDir     string
	queueDepth   int
	workers      int
	parallelism  int
	jobTimeout   time.Duration
	drainTimeout time.Duration
	accesses     int

	// listening, when set, receives the bound address once the daemon
	// accepts connections (tests use it to discover a port-0 listener).
	listening func(addr string)
}

func run(ctx context.Context, o options) error {
	reg := telemetry.New()

	engOpts := []engine.Option{engine.WithTelemetry(reg)}
	if o.parallelism > 0 {
		engOpts = append(engOpts, engine.WithParallelism(o.parallelism))
	}
	if o.cacheDir != "" {
		store, err := engine.OpenDiskCache(o.cacheDir)
		if err != nil {
			return fmt.Errorf("open result cache: %w", err)
		}
		engOpts = append(engOpts, engine.WithStore(store))
		fmt.Fprintf(os.Stderr, "llcsimd: result cache %s (%d entries warm)\n", o.cacheDir, store.Len())
	}
	eng := engine.New(engOpts...)

	srv, err := serve.New(serve.Config{
		Engine:          eng,
		Registry:        reg,
		QueueDepth:      o.queueDepth,
		Workers:         o.workers,
		JobTimeout:      o.jobTimeout,
		DefaultAccesses: o.accesses,
	})
	if err != nil {
		return err
	}

	// One mux, two surfaces: the job API and the shared observability
	// endpoints (metrics, expvar, pprof, live timeline).
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	debug := cliutil.DebugHandler(reg)
	for _, prefix := range []string{"/metrics", "/metrics.json", "/debug/"} {
		mux.Handle(prefix, debug)
	}

	lis, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(lis) }()
	fmt.Fprintf(os.Stderr, "llcsimd: serving on http://%s/ (POST /v1/jobs; metrics on /metrics)\n", lis.Addr())
	if o.listening != nil {
		o.listening(lis.Addr().String())
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting connections, then let queued and in-flight
	// jobs finish within the drain budget.
	fmt.Fprintln(os.Stderr, "llcsimd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	httpErr := httpSrv.Shutdown(drainCtx)
	if errors.Is(httpErr, context.DeadlineExceeded) {
		httpErr = nil // in-flight HTTP polls are expendable; jobs are what we drain
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain incomplete after %s: %w", o.drainTimeout, err)
	}
	fmt.Fprintln(os.Stderr, "llcsimd: drained")
	return httpErr
}
