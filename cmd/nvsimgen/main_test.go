package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nvmllc/internal/nvm"
)

func TestPrintBlockFixedCapacity(t *testing.T) {
	out := capture(t, func() error { return printBlock(true) })
	for _, want := range []string{"fixed-capacity", "Zhang_R", "SRAM", "geoErr", "worst"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestPrintBlockFixedArea(t *testing.T) {
	out := capture(t, func() error { return printBlock(false) })
	if !strings.Contains(out, "fixed-area") {
		t.Error("output missing fixed-area header")
	}
}

func TestGenerateHelper(t *testing.T) {
	m, err := generate(nvm.SRAMCell(), true)
	if err != nil {
		t.Fatal(err)
	}
	if m.CapacityBytes != 2<<20 {
		t.Errorf("fixed-capacity SRAM = %d bytes", m.CapacityBytes)
	}
	fa, err := generate(nvm.Zhang(), false)
	if err != nil {
		t.Fatal(err)
	}
	if fa.CapacityBytes <= 2<<20 {
		t.Errorf("fixed-area Zhang capacity = %dMB, want > 2MB", fa.CapacityBytes>>20)
	}
}

func TestRunExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "llc.json")
	out := capture(t, func() error { return runExport(path) })
	if !strings.Contains(out, "11 fixed-capacity and 11 fixed-area") {
		t.Errorf("export output: %q", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var models exportedModels
	if err := json.Unmarshal(data, &models); err != nil {
		t.Fatal(err)
	}
	if len(models.FixedCapacity) != 11 || len(models.FixedArea) != 11 {
		t.Errorf("model counts = %d/%d", len(models.FixedCapacity), len(models.FixedArea))
	}
	for _, m := range models.FixedCapacity {
		if err := m.Validate(); err != nil {
			t.Errorf("exported model invalid: %v", err)
		}
	}
	if err := runExport("/nonexistent-dir/x.json"); err == nil {
		t.Error("unwritable path accepted")
	}
}
