package main

// Time-resolved output for -timeline: a phase summary, a per-epoch
// table, and the per-set wear bands, plus CSV export behind
// -timeline-csv (the full-resolution series and grid; the terminal
// tables are downsampled).

import (
	"fmt"
	"io"
	"os"
	"strings"

	"nvmllc/internal/system"
	"nvmllc/internal/tablefmt"
)

// epochTableRows bounds the rendered per-epoch table; -timeline-csv
// keeps the full resolution.
const epochTableRows = 16

// wearBandRows bounds the rendered per-set wear heatmap.
const wearBandRows = 8

// renderTimeline prints the time-resolved view of one result.
func renderTimeline(w io.Writer, r *system.Result) error {
	ph := r.Phases()
	if ph == nil {
		return nil
	}
	fmt.Fprintln(w)
	pt := tablefmt.New("Phase summary", "metric", "value")
	pt.AddRowf("epochs", ph.Epochs)
	pt.AddRowf("write-rate CoV", ph.WriteRateCoV)
	pt.AddRowf("peak/mean writes", ph.PeakToMeanWrites)
	pt.AddRowf("peak/mean wear", ph.PeakToMeanWear)
	pt.AddRowf("MPKI range", fmt.Sprintf("%.2f..%.2f", ph.MPKIMin, ph.MPKIMax))
	if r.Wear != nil {
		pt.AddRowf("set-write CoV", r.Wear.SetWriteCoV)
		pt.AddRowf("set-write Gini", r.Wear.SetWriteGini)
	}
	if err := pt.Render(w); err != nil {
		return err
	}

	ds := r.Timeline.Downsample(epochTableRows)
	et := tablefmt.New("Per-epoch activity", "instructions", "LLC writes", "MPKI", "DRAM wait [us]")
	writes := ds.SeriesOf(system.TimelineLLCWrites)
	misses := ds.SeriesOf(system.TimelineLLCMisses)
	waits := ds.SeriesOf(system.TimelineDRAMWaitNS)
	for i, x := range ds.X {
		prev := uint64(0)
		if i > 0 {
			prev = ds.X[i-1]
		}
		mpki := 0.0
		if width := float64(x - prev); width > 0 && i < len(misses) {
			mpki = misses[i] / width * 1000
		}
		var wr, wait float64
		if i < len(writes) {
			wr = writes[i]
		}
		if i < len(waits) {
			wait = waits[i] / 1e3
		}
		et.AddRowf(x, wr, mpki, wait)
	}
	fmt.Fprintln(w)
	if err := et.Render(w); err != nil {
		return err
	}

	if hm := wearBands(r); hm != nil {
		fmt.Fprintln(w)
		return hm.Render(w)
	}
	return nil
}

// wearBands folds the per-set grid into rendered bands.
func wearBands(r *system.Result) *tablefmt.Heatmap {
	grid := r.WearHeatmap
	if grid == nil || grid.Rows == 0 {
		return nil
	}
	bands := grid.Downsample(wearBandRows)
	setsPerBand := (grid.Rows + bands.Rows - 1) / bands.Rows
	hm := &tablefmt.Heatmap{
		Title:    fmt.Sprintf("Per-set wear bands (%d sets per band)", setsPerBand),
		ColNames: bands.Cols,
	}
	for row := 0; row < bands.Rows; row++ {
		hi := min((row+1)*setsPerBand, grid.Rows) - 1
		hm.RowNames = append(hm.RowNames, fmt.Sprintf("sets %d-%d", row*setsPerBand, hi))
		vals := make([]float64, len(bands.Cols))
		for c := range bands.Cols {
			vals[c] = bands.At(row, c)
		}
		hm.Cells = append(hm.Cells, vals)
	}
	return hm
}

// exportTimelineCSV writes the full-resolution epoch series to path and,
// when the run tracked wear, the per-set grid next to it
// (<path minus .csv>_heatmap.csv).
func exportTimelineCSV(path string, r *system.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Timeline.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if r.WearHeatmap == nil {
		return nil
	}
	hmPath := strings.TrimSuffix(path, ".csv") + "_heatmap.csv"
	hf, err := os.Create(hmPath)
	if err != nil {
		return err
	}
	if err := r.WearHeatmap.WriteCSV(hf); err != nil {
		hf.Close()
		return err
	}
	if err := hf.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "llcsim: wrote %s and %s\n", path, hmPath)
	return nil
}
