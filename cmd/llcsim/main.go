// Command llcsim runs one workload against one LLC model on the simulated
// Gainestown system and prints the full result: timing, cache statistics,
// LLC energy breakdown and the paper's combined metrics.
//
// Usage:
//
//	llcsim -workload cg -llc Jan_S -config area -accesses 1000000
//	llcsim -workload bzip2 -llc SRAM
//	llcsim -workload is -llc Kang_P -contention   (write-contention ablation)
//	llcsim -workload is -llc Kang_P -faults -prewear 2.8e7   (aged, faulty LLC)
//	llcsim -workload is -llc Kang_P -timeline     (per-epoch phase report)
//	llcsim -artifact degradation                  (run a registry artifact instead)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nvmllc/internal/cliutil"
	"nvmllc/internal/endurance"
	"nvmllc/internal/engine"
	"nvmllc/internal/fault"
	"nvmllc/internal/mainmem"
	"nvmllc/internal/reference"
	"nvmllc/internal/sweep"
	"nvmllc/internal/system"
	"nvmllc/internal/tablefmt"
	"nvmllc/internal/workload"
)

func main() {
	wl := flag.String("workload", "cg", "Table V workload name")
	llc := flag.String("llc", "SRAM", "LLC model name from Table III (e.g. Jan_S, Zhang_R, SRAM)")
	config := flag.String("config", "cap", "LLC configuration block: cap (fixed-capacity) or area (fixed-area)")
	threads := flag.Int("threads", 4, "threads for multi-threaded workloads")
	cores := flag.Int("cores", 4, "simulated cores")
	contention := flag.Bool("contention", false, "model LLC bank write contention (ablation)")
	wear := flag.Bool("wear", false, "track LLC write wear and project lifetime")
	timeline := flag.Bool("timeline", false, "sample per-epoch series (hits, writes, MPKI, wear, faults) and print a phase report")
	timelineCSV := flag.String("timeline-csv", "", "write the full-resolution epoch series (and per-set wear grid) to this CSV path (implies -timeline)")
	faults := flag.Bool("faults", false, "inject wear-driven stuck-at faults (endurance from the LLC's NVM class)")
	prewear := flag.Float64("prewear", 0, "pre-age the LLC by this many per-cell writes before the run (implies -faults)")
	estimate := flag.Bool("estimate", false, "validate the reuse-distance estimator on -workload: profile-predicted vs exact hit rate/MPKI/time per LLC geometry")
	mainMemTech := flag.String("mainmem", "", "replace DRAM with an NVMain-style main memory: dram, pcram, sttram, rram")
	hybridWays := flag.Int("hybridsram", 0, "make the LLC a hybrid with this many SRAM ways (rest NVM from -llc)")
	artifactSel := cliutil.ArtifactFlag(nil, sweep.ArtifactNames())
	std := cliutil.StandardFlags(nil, 1_000_000)
	std.ManifestFlag(nil)
	flag.Parse()

	cliutil.Main("llcsim", func(ctx context.Context) (err error) {
		ctx, cancel := std.WithTimeout(ctx)
		defer cancel()
		obs, err := std.StartObservability("llcsim")
		if err != nil {
			return err
		}
		defer func() {
			if cerr := obs.Close(err); err == nil {
				err = cerr
			}
		}()
		ctx = obs.Context(ctx)
		if names := artifactSel.Names(); len(names) > 0 {
			return runArtifacts(ctx, obs, std, names, *contention)
		}
		if *estimate {
			return runEstimate(ctx, obs, std, *wl, *threads, *contention)
		}
		return run(ctx, obs, *wl, *llc, *config, std.Accesses, *threads, *cores, std.Seed, *contention, *wear, *faults || *prewear > 0, *prewear, *mainMemTech, *hybridWays, *timeline || *timelineCSV != "", *timelineCSV)
	})
}

// runArtifacts dispatches to the sweep registry: the same tables and
// figures cmd/figures prints, reachable from llcsim by name.
func runArtifacts(ctx context.Context, obs *cliutil.Observability, std *cliutil.Flags, names []string, contention bool) error {
	eng := std.Engine(obs.EngineOptions()...)
	obs.TrackEngine(eng)
	cfg := sweep.Config{
		Opts:            workload.Options{Accesses: std.Accesses, Seed: std.Seed},
		WriteContention: contention,
		Engine:          eng,
		Telemetry:       obs.Registry,
	}
	for _, name := range names {
		res, err := sweep.Run(ctx, name, cfg)
		if err != nil {
			return err
		}
		renderers := make([]cliutil.Renderer, len(res.Renderers))
		for i, r := range res.Renderers {
			renderers[i] = r
		}
		if err := cliutil.RenderAll(os.Stdout, renderers...); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// runEstimate runs the estimator-validation study for one workload: a
// capacity ladder of SRAM-class LLCs simulated exactly, against one
// reuse-distance profile predicting all of them.
func runEstimate(ctx context.Context, obs *cliutil.Observability, std *cliutil.Flags, wl string, threads int, contention bool) error {
	eng := std.Engine(obs.EngineOptions()...)
	obs.TrackEngine(eng)
	cfg := sweep.Config{
		Opts:            workload.Options{Accesses: std.Accesses, Threads: threads, Seed: std.Seed},
		WriteContention: contention,
		Engine:          eng,
		Telemetry:       obs.Registry,
	}
	study, err := sweep.Estimate(ctx, cfg, sweep.EstimateOptions{Workload: wl})
	if err != nil {
		return err
	}
	return cliutil.RenderAll(os.Stdout, sweep.RenderEstimate(study))
}

func run(ctx context.Context, obs *cliutil.Observability, wl, llc, config string, accesses, threads, cores int, seed int64, contention, wear, faults bool, prewear float64, mainMemTech string, hybridSRAMWays int, timeline bool, timelineCSV string) error {
	models := reference.FixedCapacityModels()
	if config == "area" {
		models = reference.FixedAreaModels()
	} else if config != "cap" {
		return fmt.Errorf("unknown -config %q (want cap or area)", config)
	}
	model, err := reference.ModelByName(models, llc)
	if err != nil {
		return err
	}
	profile, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	tr, err := workload.Generate(profile, workload.Options{
		Accesses: accesses, Threads: threads, Seed: seed,
	})
	if err != nil {
		return err
	}
	cfg := system.Gainestown(model).WithCores(cores)
	cfg.ModelWriteContention = contention
	cfg.TrackWear = wear
	if timeline {
		cfg.Timeline = &system.TimelineConfig{}
		cfg.TrackWear = true // the per-set wear heatmap rides the sampler
	}
	if faults {
		cfg.Fault = fault.Config{
			Options:       fault.Options{Class: model.Class},
			PreWearWrites: prewear,
		}
		if !cfg.Fault.Enabled() {
			fmt.Fprintf(os.Stderr, "llcsim: -faults has no effect on %s (infinite write endurance)\n", model.Class)
		}
	}
	if hybridSRAMWays > 0 {
		cfg.Hybrid = &system.HybridConfig{
			SRAM:     reference.SRAMBaseline(),
			NVM:      model,
			SRAMWays: hybridSRAMWays,
		}
		cfg.TrackWear = false // unsupported in hybrid mode
	}
	var nvMainMem *mainmem.Memory
	if mainMemTech != "" {
		tech, err := parseMainMemTech(mainMemTech)
		if err != nil {
			return err
		}
		nvMainMem, err = mainmem.New(mainmem.Preset(tech))
		if err != nil {
			return err
		}
		cfg.Memory = nvMainMem
	}
	// Run through the engine (rather than system.Run directly) so the
	// design point gets the full telemetry treatment: a simulate span, job
	// metrics, system-level counters and a manifest design_point event.
	genOpts := workload.Options{Accesses: accesses, Threads: threads, Seed: seed}
	eng := engine.New(obs.EngineOptions()...)
	obs.TrackEngine(eng)
	r, err := eng.Run(ctx, engine.Job{
		Workload:  wl,
		TraceOpts: genOpts,
		Config:    cfg,
		Trace:     tr,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%s on %s (%s, %d cores, %d accesses, %d threads)\n\n",
		r.Workload, r.LLCName, config, cores, len(tr.Accesses), tr.Threads)
	t := tablefmt.New("Result", "metric", "value")
	t.AddRowf("execution time [ms]", r.TimeNS/1e6)
	t.AddRowf("instructions", r.Instructions)
	t.AddRowf("LLC hits", r.LLC.Hits)
	t.AddRowf("LLC misses", r.LLC.Misses)
	t.AddRowf("LLC writes (fills+wb)", r.LLC.Writes)
	t.AddRowf("LLC MPKI", r.LLCMPKI())
	t.AddRowf("L1I", r.L1I.String())
	t.AddRowf("L1D", r.L1D.String())
	t.AddRowf("L2", r.L2.String())
	t.AddRowf("DRAM reads", r.DRAM.Reads)
	t.AddRowf("DRAM writes", r.DRAM.Writes)
	t.AddRowf("LLC dynamic energy [mJ]", r.LLCDynamicJ*1e3)
	t.AddRowf("LLC leakage energy [mJ]", r.LLCLeakageJ*1e3)
	t.AddRowf("LLC total energy [mJ]", r.LLCEnergyJ()*1e3)
	t.AddRowf("EDP [J*s]", r.EDP())
	t.AddRowf("ED2P [J*s^2]", r.ED2P())
	t.AddRowf("memory stall [ms]", r.MemStallNS/1e6)
	if r.Hybrid != nil {
		h := r.Hybrid
		t.AddRowf("hybrid SRAM/NVM hits", fmt.Sprintf("%d / %d", h.SRAMHits, h.NVMHits))
		t.AddRowf("hybrid SRAM/NVM writes", fmt.Sprintf("%d / %d", h.SRAMWrites, h.NVMWrites))
		t.AddRowf("hybrid migrations/demotions", fmt.Sprintf("%d / %d", h.Migrations, h.Demotions))
	}
	if nvMainMem != nil {
		ms := nvMainMem.Stats()
		t.AddRowf("main memory tech", nvMainMem.Tech().String())
		t.AddRowf("main memory row hit rate", ms.RowHitRate())
		t.AddRowf("main memory energy [mJ]", nvMainMem.EnergyJ(r.TimeNS)*1e3)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if d := r.Degradation; d != nil {
		fmt.Println()
		ft := tablefmt.New("Wear-driven faults and degradation", "metric", "value")
		ft.AddRowf("endurance [writes/cell]", d.EnduranceWrites)
		ft.AddRowf("ways condemned (pre-aged)", d.InitialDisabledWays)
		ft.AddRowf("ways condemned (runtime)", d.CondemnedWays)
		ft.AddRowf("dead sets", d.DeadSets)
		ft.AddRowf("write-verify retries", d.WriteRetries)
		ft.AddRowf("lines lost to faults", d.FailedWrites)
		ft.AddRowf("dead-set accesses", d.DeadSetAccesses+d.DeadSetWrites)
		ft.AddRowf("effective capacity", d.CapacityFraction())
		if err := ft.Render(os.Stdout); err != nil {
			return err
		}
	}
	if r.Wear != nil {
		est, err := endurance.Estimate(r, endurance.Options{Class: model.Class})
		if err != nil {
			return err
		}
		fmt.Println()
		w := tablefmt.New("Write wear and lifetime projection", "metric", "value")
		w.AddRowf("lines written", r.Wear.LinesTouched)
		w.AddRowf("hottest line writes", r.Wear.MaxLineWrites)
		w.AddRowf("hottest set writes", r.Wear.MaxSetWrites)
		w.AddRowf("imbalance factor", r.Wear.ImbalanceFactor())
		w.AddRowf("raw lifetime [years]", est.RawYears)
		w.AddRowf("wear-leveled lifetime [years]", est.LeveledYears)
		if err := w.Render(os.Stdout); err != nil {
			return err
		}
	}
	if r.Timeline != nil {
		if err := renderTimeline(os.Stdout, r); err != nil {
			return err
		}
		if timelineCSV != "" {
			return exportTimelineCSV(timelineCSV, r)
		}
	}
	return nil
}

// parseMainMemTech maps a flag value to a technology preset.
func parseMainMemTech(s string) (mainmem.Tech, error) {
	switch s {
	case "dram":
		return mainmem.DRAM, nil
	case "pcram", "pcm":
		return mainmem.PCRAMMem, nil
	case "sttram", "stt":
		return mainmem.STTRAMMem, nil
	case "rram":
		return mainmem.RRAMMem, nil
	}
	return 0, fmt.Errorf("unknown main memory technology %q", s)
}
