package main

import (
	"context"
	"strings"
	"testing"

	"nvmllc/internal/cliutil"
)

func TestRunBasic(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), &cliutil.Observability{}, "tonto", "Jan_S", "cap", 30000, 4, 4, 1, false, false, "", 0)
	})
	for _, want := range []string{"tonto on Jan_S", "LLC MPKI", "ED2P"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "lifetime") {
		t.Error("wear output printed without -wear")
	}
}

func TestRunWithWear(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), &cliutil.Observability{}, "is", "Kang_P", "area", 30000, 4, 4, 1, false, true, "", 0)
	})
	for _, want := range []string{"Write wear", "raw lifetime"} {
		if !strings.Contains(out, want) {
			t.Errorf("wear output missing %q", want)
		}
	}
}

func TestRunWithNVMMainMemory(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), &cliutil.Observability{}, "cg", "SRAM", "cap", 30000, 4, 4, 1, false, false, "pcram", 0)
	})
	for _, want := range []string{"main memory tech", "PCRAM", "row hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("main-memory output missing %q", want)
		}
	}
	if err := run(context.Background(), &cliutil.Observability{}, "cg", "SRAM", "cap", 1000, 4, 4, 1, false, false, "flash", 0); err == nil {
		t.Error("unknown main memory tech accepted")
	}
}

func TestRunHybrid(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), &cliutil.Observability{}, "ua", "Kang_P", "cap", 30000, 4, 4, 1, false, false, "", 4)
	})
	for _, want := range []string{"hybrid(SRAM+Kang_P)", "migrations"} {
		if !strings.Contains(out, want) {
			t.Errorf("hybrid output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), &cliutil.Observability{}, "nosuch", "SRAM", "cap", 1000, 1, 4, 1, false, false, "", 0); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(context.Background(), &cliutil.Observability{}, "cg", "nosuch", "cap", 1000, 4, 4, 1, false, false, "", 0); err == nil {
		t.Error("unknown LLC accepted")
	}
	if err := run(context.Background(), &cliutil.Observability{}, "cg", "SRAM", "weird", 1000, 4, 4, 1, false, false, "", 0); err == nil {
		t.Error("unknown config accepted")
	}
}
