package main

import (
	"context"
	"os"
	"strings"
	"testing"

	"nvmllc/internal/cliutil"
)

func TestRunBasic(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), &cliutil.Observability{}, "tonto", "Jan_S", "cap", 30000, 4, 4, 1, false, false, false, 0, "", 0, false, "")
	})
	for _, want := range []string{"tonto on Jan_S", "LLC MPKI", "ED2P"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "lifetime") {
		t.Error("wear output printed without -wear")
	}
	if strings.Contains(out, "degradation") {
		t.Error("fault output printed without -faults")
	}
}

func TestRunWithWear(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), &cliutil.Observability{}, "is", "Kang_P", "area", 30000, 4, 4, 1, false, true, false, 0, "", 0, false, "")
	})
	for _, want := range []string{"Write wear", "raw lifetime"} {
		if !strings.Contains(out, want) {
			t.Errorf("wear output missing %q", want)
		}
	}
}

func TestRunWithFaults(t *testing.T) {
	// Pre-age most of the way to the PCRAM endurance budget so the short
	// trace still produces visible degradation output.
	out := capture(t, func() error {
		return run(context.Background(), &cliutil.Observability{}, "is", "Kang_P", "cap", 30000, 4, 4, 1, false, false, true, 4e7, "", 0, false, "")
	})
	for _, want := range []string{"Wear-driven faults and degradation", "effective capacity", "ways condemned (pre-aged)"} {
		if !strings.Contains(out, want) {
			t.Errorf("fault output missing %q", want)
		}
	}
}

func TestRunWithNVMMainMemory(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), &cliutil.Observability{}, "cg", "SRAM", "cap", 30000, 4, 4, 1, false, false, false, 0, "pcram", 0, false, "")
	})
	for _, want := range []string{"main memory tech", "PCRAM", "row hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("main-memory output missing %q", want)
		}
	}
	if err := run(context.Background(), &cliutil.Observability{}, "cg", "SRAM", "cap", 1000, 4, 4, 1, false, false, false, 0, "flash", 0, false, ""); err == nil {
		t.Error("unknown main memory tech accepted")
	}
}

func TestRunHybrid(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), &cliutil.Observability{}, "ua", "Kang_P", "cap", 30000, 4, 4, 1, false, false, false, 0, "", 4, false, "")
	})
	for _, want := range []string{"hybrid(SRAM+Kang_P)", "migrations"} {
		if !strings.Contains(out, want) {
			t.Errorf("hybrid output missing %q", want)
		}
	}
}

func TestRunWithTimeline(t *testing.T) {
	csv := t.TempDir() + "/tl.csv"
	out := capture(t, func() error {
		return run(context.Background(), &cliutil.Observability{}, "is", "Kang_P", "cap", 30000, 4, 4, 1, false, false, false, 0, "", 0, true, csv)
	})
	for _, want := range []string{"Phase summary", "Per-epoch activity", "Per-set wear bands", "write-rate CoV"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline output missing %q", want)
		}
	}
	series, err := os.ReadFile(csv)
	if err != nil {
		t.Fatalf("timeline CSV not written: %v", err)
	}
	if !strings.HasPrefix(string(series), "instructions,") {
		t.Errorf("timeline CSV header = %q", strings.SplitN(string(series), "\n", 2)[0])
	}
	grid, err := os.ReadFile(strings.TrimSuffix(csv, ".csv") + "_heatmap.csv")
	if err != nil {
		t.Fatalf("heatmap CSV not written: %v", err)
	}
	if !strings.Contains(string(grid), "writes") {
		t.Errorf("heatmap CSV missing writes column: %q", strings.SplitN(string(grid), "\n", 2)[0])
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), &cliutil.Observability{}, "nosuch", "SRAM", "cap", 1000, 1, 4, 1, false, false, false, 0, "", 0, false, ""); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(context.Background(), &cliutil.Observability{}, "cg", "nosuch", "cap", 1000, 4, 4, 1, false, false, false, 0, "", 0, false, ""); err == nil {
		t.Error("unknown LLC accepted")
	}
	if err := run(context.Background(), &cliutil.Observability{}, "cg", "SRAM", "weird", 1000, 4, 4, 1, false, false, false, 0, "", 0, false, ""); err == nil {
		t.Error("unknown config accepted")
	}
	if err := run(context.Background(), &cliutil.Observability{}, "cg", "SRAM", "cap", 1000, 4, 4, 1, false, false, false, 0, "", 0, false, ""); err != nil {
		t.Errorf("faultless SRAM run failed: %v", err)
	}
}

func TestRunArtifactsUnknown(t *testing.T) {
	err := runArtifacts(context.Background(), &cliutil.Observability{}, &cliutil.Flags{Accesses: 1000, Seed: 1}, []string{"nope"}, false)
	if err == nil || !strings.Contains(err.Error(), "unknown artifact") {
		t.Errorf("want unknown-artifact error, got %v", err)
	}
}
