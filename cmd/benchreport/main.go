// Command benchreport measures the simulator hot loop across its six
// performance dimensions — core scheduler (min-heap default vs the
// historical linear scan), tag-store layout (packed struct-of-arrays vs
// the retained slice-of-struct reference), trace input (whole-trace
// materialization vs the chunked ring-streaming pipeline with batched
// pre-decode, measured both fed from the materialized trace — the
// apples-to-apples "input" parity comparison — and fed from the
// generator, "input-gen", which puts trace synthesis in the timed
// region), wear-driven fault injection (disabled vs
// enabled-but-quiescent, expected ≤2% quiescent overhead from the
// per-set countdown fast path), epoch sampling (the -timeline
// instrumentation, expected <5% enabled and 0% disabled: one nil check
// per access), cross-job trace sharing (an 8-point LLC-model sweep
// with the trace materialized once vs regenerated per design point),
// and geometry-sweep profiling (eight LLC capacities simulated exactly
// one by one vs answered by a single filtered reuse-distance profile,
// the internal/sweep estimator's fast path, gated at ≥3×) — plus the
// trace generator, and writes the results as JSON. The committed
// BENCH_hotloop.json at the repository root is this program's output:
// the repo's perf baseline, regenerated whenever the hot path changes
// (see the README's Performance section).
//
// Usage:
//
//	go run ./cmd/benchreport [-o BENCH_hotloop.json] [-accesses 100000]
//	    [-benchtime 1s] [-count 3] [-quick] [-gate-stream-pct 5]
//	    [-gate-profile-x 3] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// Each configuration is measured -count times with every variant
// interleaved within a repetition and the fastest repetition kept, so
// co-tenant noise and frequency drift bias all variants equally and the
// minimum is the most repeatable estimator.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"nvmllc/internal/cache"
	"nvmllc/internal/engine"
	"nvmllc/internal/fault"
	"nvmllc/internal/profile"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// benchResult is one measured configuration.
type benchResult struct {
	Benchmark   string  `json:"benchmark"`
	Scheduler   string  `json:"scheduler,omitempty"`
	Layout      string  `json:"layout,omitempty"`
	Input       string  `json:"input,omitempty"`    // "materialized", "streaming" or "streaming+gen"
	Faults      string  `json:"faults,omitempty"`   // "disabled" or "enabled"
	Sampling    string  `json:"sampling,omitempty"` // "disabled" or "enabled"
	Sharing     string  `json:"sharing,omitempty"`  // "shared" or "unshared" (sweep rows)
	Mode        string  `json:"mode,omitempty"`     // "exact" or "profiled" (geometry-sweep rows)
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	NsPerAccess float64 `json:"ns_per_access"`
	// PeakBytes is the modeled peak resident trace-buffer footprint of
	// one run (system.MaterializedPeakBytes / StreamingPeakBytes) — the
	// figure the streaming pipeline bounds, distinct from BytesPerOp,
	// which is cumulative allocator traffic and says nothing about
	// residency once scratch reuse makes runs allocation-free.
	PeakBytes int64 `json:"peak_bytes,omitempty"`
	// TraceGens is the number of trace materializations one sweep run
	// performed (sweep rows only): 1 with sharing, one per design point
	// without.
	TraceGens uint64 `json:"trace_gens,omitempty"`
}

// comparison pairs two variants along one dimension on one core count.
type comparison struct {
	Benchmark      string  `json:"benchmark"`
	Dimension      string  `json:"dimension"` // "scheduler", "layout", "input", "input-gen", "faults", "sampling", "sharing" or "profile"
	Baseline       string  `json:"baseline"`
	Contender      string  `json:"contender"`
	BaselineNsOp   float64 `json:"baseline_ns_per_op"`
	ContenderNsOp  float64 `json:"contender_ns_per_op"`
	ImprovementPct float64 `json:"improvement_pct"`
	// BytesReductionX is baseline bytes_per_op over contender bytes_per_op:
	// an allocator-traffic ratio, which with warmed scratch buffers on both
	// sides hovers near 1× and must not be read as a footprint claim.
	BytesReductionX float64 `json:"bytes_reduction_x,omitempty"`
	// PeakReductionX is baseline peak_bytes over contender peak_bytes —
	// the O(trace) vs O(chunk × ring) residency ratio the streaming
	// pipeline actually delivers (input dimension only).
	PeakReductionX float64 `json:"peak_reduction_x,omitempty"`
	// SpeedupX is baseline ns/op over contender ns/op (profile dimension
	// only): how many times faster one reuse-distance profile answers
	// the geometry sweep than exact simulation. -gate-profile-x gates it.
	SpeedupX float64 `json:"speedup_x,omitempty"`
}

// report is the BENCH_hotloop.json schema.
type report struct {
	Schema         string        `json:"schema"`
	GoVersion      string        `json:"go_version"`
	GOOS           string        `json:"goos"`
	GOARCH         string        `json:"goarch"`
	Workload       string        `json:"workload"`
	AccessesPerRun int           `json:"accesses_per_run"`
	Results        []benchResult `json:"results"`
	Comparisons    []comparison  `json:"comparisons"`
}

// variant is one measurable configuration of the hot loop.
type variant struct {
	scheduler string
	layout    string
	input     string
	faults    string
	sampling  string
	sharing   string
	mode      string
	bench     func(b *testing.B)
}

// nsPerOp extracts the float ns/op of a measurement.
func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// measureBest repeats the whole variant set `count` times, interleaving
// the variants within each repetition so machine drift (frequency
// scaling, co-tenants) biases every side equally, and keeps each
// variant's fastest repetition — external noise only ever adds time, so
// the minimum is the most repeatable estimator.
func measureBest(variants []variant, count int) []testing.BenchmarkResult {
	best := make([]testing.BenchmarkResult, len(variants))
	for rep := 0; rep < count; rep++ {
		for i, v := range variants {
			runtime.GC()
			r := testing.Benchmark(v.bench)
			if rep == 0 || nsPerOp(r) < nsPerOp(best[i]) {
				best[i] = r
			}
		}
	}
	return best
}

func toResult(name string, v variant, accesses int, r testing.BenchmarkResult) benchResult {
	ns := nsPerOp(r)
	return benchResult{
		Benchmark:   name,
		Scheduler:   v.scheduler,
		Layout:      v.layout,
		Input:       v.input,
		Faults:      v.faults,
		Sampling:    v.sampling,
		Sharing:     v.sharing,
		Mode:        v.mode,
		Iterations:  r.N,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		NsPerAccess: ns / float64(accesses),
	}
}

// compare builds the comparison row for one dimension from the baseline
// and contender results.
func compare(name, dimension string, base, cont benchResult) comparison {
	c := comparison{
		Benchmark:      name,
		Dimension:      dimension,
		BaselineNsOp:   base.NsPerOp,
		ContenderNsOp:  cont.NsPerOp,
		ImprovementPct: 100 * (base.NsPerOp - cont.NsPerOp) / base.NsPerOp,
	}
	switch dimension {
	case "scheduler":
		c.Baseline, c.Contender = base.Scheduler, cont.Scheduler
	case "layout":
		c.Baseline, c.Contender = base.Layout, cont.Layout
	case "input", "input-gen":
		c.Baseline, c.Contender = base.Input, cont.Input
		if cont.BytesPerOp > 0 {
			c.BytesReductionX = float64(base.BytesPerOp) / float64(cont.BytesPerOp)
		}
		if cont.PeakBytes > 0 {
			c.PeakReductionX = float64(base.PeakBytes) / float64(cont.PeakBytes)
		}
	case "sharing":
		c.Baseline, c.Contender = base.Sharing, cont.Sharing
	case "profile":
		c.Baseline, c.Contender = base.Mode, cont.Mode
		if cont.NsPerOp > 0 {
			c.SpeedupX = base.NsPerOp / cont.NsPerOp
		}
	case "faults":
		c.Baseline, c.Contender = base.Faults, cont.Faults
	case "sampling":
		c.Baseline, c.Contender = base.Sampling, cont.Sampling
	}
	return c
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}

func main() {
	testing.Init() // register testing's flags so test.benchtime is settable
	out := flag.String("o", "BENCH_hotloop.json", "output path ('-' for stdout)")
	accesses := flag.Int("accesses", 100_000, "base trace length per run")
	benchtime := flag.Duration("benchtime", time.Second, "target time per measurement")
	count := flag.Int("count", 3, "repetitions per configuration (best is kept)")
	quick := flag.Bool("quick", false, "CI mode: shorter traces and measurements (50k accesses, 200ms, best of 2)")
	gateStreamPct := flag.Float64("gate-stream-pct", -1,
		"fail (exit 1) if streaming is more than this percent slower than materialized on any core count (<0 disables)")
	gateProfileX := flag.Float64("gate-profile-x", -1,
		"fail (exit 1) if the profiled geometry sweep is not at least this many times faster than exact simulation (<0 disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurements to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()
	if *quick {
		// Short enough for a PR gate, long enough to be gateable: below
		// ~30k accesses the ring's fixed per-run costs (goroutine spawn,
		// channel setup) stop amortizing and the parity comparison
		// measures trace length, not the pipeline; a single repetition
		// is noise-bound on shared runners.
		*accesses = 50_000
		*benchtime = 200 * time.Millisecond
		*count = 3
	}
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	const workloadName = "ft"
	p, err := workload.ByName(workloadName)
	if err != nil {
		fatal(err)
	}
	rep := report{
		Schema:         "nvmllc/bench_hotloop/v5",
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Workload:       workloadName,
		AccessesPerRun: *accesses,
	}
	ctx := context.Background()
	for _, cores := range []int{4, 16, 64} {
		opts := workload.Options{Accesses: *accesses, Threads: cores, Seed: 1}
		tr, err := workload.Generate(p, opts)
		if err != nil {
			fatal(err)
		}
		gen, err := workload.NewGenerator(p, opts)
		if err != nil {
			fatal(err)
		}
		src, err := trace.NewTraceSource(tr)
		if err != nil {
			fatal(err)
		}
		cfg := system.Gainestown(reference.SRAMBaseline()).WithCores(cores)
		cfgFault := cfg
		cfgFault.Fault = fault.Config{Options: fault.Options{EnduranceWrites: 1e15}}
		cfgTimeline := cfg
		cfgTimeline.Timeline = &system.TimelineConfig{} // wear tracking off: isolate the sampler's own cost
		name := fmt.Sprintf("HotLoop_%dCores", cores)
		n := len(tr.Accesses)

		runBench := func(run func(scratch *system.Scratch) error) func(b *testing.B) {
			var scratch system.Scratch
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := run(&scratch); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		variants := []variant{
			{scheduler: system.SchedLinearScan.String(), layout: cache.LayoutSoA.String(), input: "materialized",
				bench: runBench(func(scratch *system.Scratch) error {
					_, err := system.RunScheduled(ctx, cfg, tr, system.SchedLinearScan, scratch)
					return err
				})},
			{scheduler: system.SchedHeap.String(), layout: cache.LayoutAoS.String(), input: "materialized",
				bench: runBench(func(scratch *system.Scratch) error {
					_, err := system.RunLayout(ctx, cfg, tr, cache.LayoutAoS, scratch)
					return err
				})},
			{scheduler: system.SchedHeap.String(), layout: cache.LayoutSoA.String(), input: "materialized",
				bench: runBench(func(scratch *system.Scratch) error {
					_, err := system.RunWith(ctx, cfg, tr, scratch)
					return err
				})},
			// Streaming parity: the ring pipeline fed from the already
			// materialized trace, so both sides of the "input" comparison
			// time exactly the same simulation work and the delta is the
			// pipeline itself (chunk validation, scatter decode, channel
			// handoff). Trace synthesis is measured separately (TraceGen and
			// the streaming+gen variant below).
			{scheduler: system.SchedHeap.String(), layout: cache.LayoutSoA.String(), input: "streaming",
				bench: runBench(func(scratch *system.Scratch) error {
					src.Reset()
					_, err := system.RunStreamWith(ctx, cfg, src, scratch)
					return err
				})},
			// Faults enabled but quiescent: a finite endurance far beyond
			// the trace's wear, so the per-write fault bookkeeping runs
			// without any condemnations. The SoA materialized variant above
			// doubles as the faults-disabled baseline (zero-value fault
			// config ⇒ nil injector ⇒ the historical hot path, ~0%
			// overhead by construction).
			{scheduler: system.SchedHeap.String(), layout: cache.LayoutSoA.String(), input: "materialized", faults: "enabled",
				bench: runBench(func(scratch *system.Scratch) error {
					_, err := system.RunWith(ctx, cfgFault, tr, scratch)
					return err
				})},
			// Epoch sampling on: per-epoch delta capture in the hot loop.
			// The same SoA materialized baseline covers sampling-disabled
			// (a nil sampler costs one pointer check per retired batch).
			{scheduler: system.SchedHeap.String(), layout: cache.LayoutSoA.String(), input: "materialized", sampling: "enabled",
				bench: runBench(func(scratch *system.Scratch) error {
					_, err := system.RunWith(ctx, cfgTimeline, tr, scratch)
					return err
				})},
			// Generator-fed streaming: the ring consuming the synthetic
			// workload generator directly, so trace synthesis sits inside
			// the timed region and per-run residency is O(chunk × ring)
			// with no materialized trace at all. On a multi-core host the
			// producer overlaps the consumer and this approaches the
			// parity row; on a single-CPU runner generation serializes and
			// its full cost (see the TraceGen row) lands on top.
			{scheduler: system.SchedHeap.String(), layout: cache.LayoutSoA.String(), input: "streaming+gen",
				bench: runBench(func(scratch *system.Scratch) error {
					gen.Reset()
					_, err := system.RunStreamWith(ctx, cfg, gen, scratch)
					return err
				})},
		}
		variants[2].faults = "disabled"
		variants[2].sampling = "disabled"
		fmt.Fprintf(os.Stderr, "measuring %s (%d variants, best of %d)...\n", name, len(variants), *count)
		results := measureBest(variants, *count)
		scanRes := toResult(name, variants[0], n, results[0])
		aosRes := toResult(name, variants[1], n, results[1])
		soaRes := toResult(name, variants[2], n, results[2])
		streamRes := toResult(name, variants[3], n, results[3])
		faultRes := toResult(name, variants[4], n, results[4])
		samplingRes := toResult(name, variants[5], n, results[5])
		streamGenRes := toResult(name, variants[6], n, results[6])
		soaRes.PeakBytes = system.MaterializedPeakBytes(int64(n))
		streamRes.PeakBytes = system.StreamedTracePeakBytes(int64(n), system.DefaultChunkAccesses, system.DefaultRingSlots)
		streamGenRes.PeakBytes = system.StreamingPeakBytes(system.DefaultChunkAccesses, system.DefaultRingSlots)
		rep.Results = append(rep.Results, scanRes, aosRes, soaRes, streamRes, faultRes, samplingRes, streamGenRes)
		rep.Comparisons = append(rep.Comparisons,
			compare(name, "scheduler", scanRes, soaRes),
			compare(name, "layout", aosRes, soaRes),
			compare(name, "input", soaRes, streamRes),
			compare(name, "input-gen", soaRes, streamGenRes),
			compare(name, "faults", soaRes, faultRes),
			compare(name, "sampling", soaRes, samplingRes),
		)
	}

	// Sweep-level amortization: 8 design points differing only in the LLC
	// model over one workload. With trace sharing the sweep materializes
	// its trace once; without, every design point regenerates it. The
	// result cache is off on both sides so every iteration simulates all
	// 8 points.
	fmt.Fprintln(os.Stderr, "measuring Sweep_8Points...")
	sweepOpts := workload.Options{Accesses: *accesses, Threads: 4, Seed: 1}
	sweepModels := reference.FixedCapacityModels()[:8]
	mkSweepJobs := func() []engine.Job {
		jobs := make([]engine.Job, len(sweepModels))
		for i, m := range sweepModels {
			jobs[i] = engine.StreamJob(p, sweepOpts, system.Gainestown(m).WithCores(4))
		}
		return jobs
	}
	runSweep := func(opts ...engine.Option) (engine.Stats, error) {
		eng := engine.New(append([]engine.Option{engine.WithoutCache()}, opts...)...)
		if _, err := eng.RunAll(ctx, mkSweepJobs()); err != nil {
			return engine.Stats{}, err
		}
		return eng.Stats(), nil
	}
	sweepBench := func(opts ...engine.Option) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runSweep(opts...); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	sweepVariants := []variant{
		{sharing: "unshared", bench: sweepBench(engine.WithoutTraceSharing())},
		{sharing: "shared", bench: sweepBench()},
	}
	sweepResults := measureBest(sweepVariants, *count)
	sweepN := len(sweepModels) * *accesses
	unsharedRes := toResult("Sweep_8Points", sweepVariants[0], sweepN, sweepResults[0])
	sharedRes := toResult("Sweep_8Points", sweepVariants[1], sweepN, sweepResults[1])
	// Without sharing every design point generates for itself; with it
	// the engine reports its actual materialization count (expected 1).
	unsharedRes.TraceGens = uint64(len(sweepModels))
	sharedStats, err := runSweep()
	if err != nil {
		fatal(err)
	}
	sharedRes.TraceGens = sharedStats.TraceGens
	rep.Results = append(rep.Results, unsharedRes, sharedRes)
	rep.Comparisons = append(rep.Comparisons, compare("Sweep_8Points", "sharing", unsharedRes, sharedRes))

	// Geometry-sweep profiling: eight SRAM-class LLC capacities over one
	// quad-core trace, simulated exactly one after another versus answered
	// by a single filtered reuse-distance profile — the internal/sweep
	// estimator's fast path. The profiled side does strictly more than the
	// estimator needs (it also covers every associativity 1..16), so the
	// measured speedup is a floor on what sweeps see per anchor.
	fmt.Fprintln(os.Stderr, "measuring Profile_8Geometries...")
	profOpts := workload.Options{Accesses: *accesses, Threads: 4, Seed: 1}
	profTr, err := workload.Generate(p, profOpts)
	if err != nil {
		fatal(err)
	}
	profCaps, err := cache.CapacityLadder(32<<20, 8)
	if err != nil {
		fatal(err)
	}
	profCfgs := make([]system.Config, len(profCaps))
	for i, c := range profCaps {
		m := reference.SRAMBaseline()
		m.CapacityBytes = c
		m.Name = fmt.Sprintf("SRAM@%dKiB", c>>10)
		profCfgs[i] = system.Gainestown(m).WithCores(4)
	}
	tmpl := profCfgs[0]
	profGeoms, err := cache.EnumerateGeoms(profCaps, tmpl.BlockBytes, tmpl.LLCWays)
	if err != nil {
		fatal(err)
	}
	profCfg := profile.Config{
		BlockBytes: tmpl.BlockBytes,
		SetCounts:  cache.SetCountsOf(profGeoms),
		MaxWays:    tmpl.LLCWays,
	}
	hier := profile.Hierarchy{
		BlockBytes: tmpl.BlockBytes,
		L1I:        profile.LevelSpec{CapacityBytes: tmpl.L1IBytes, Ways: tmpl.L1IWays},
		L1D:        profile.LevelSpec{CapacityBytes: tmpl.L1DBytes, Ways: tmpl.L1DWays},
		L2:         profile.LevelSpec{CapacityBytes: tmpl.L2Bytes, Ways: tmpl.L2Ways},
	}
	profSrc, err := trace.NewTraceSource(profTr)
	if err != nil {
		fatal(err)
	}
	profVariants := []variant{
		{mode: "exact", bench: func(b *testing.B) {
			var scratch system.Scratch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, c := range profCfgs {
					if _, err := system.RunWith(ctx, c, profTr, &scratch); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{mode: "profiled", bench: func(b *testing.B) {
			var sc profile.Scratch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				profSrc.Reset()
				if _, err := profile.RunFiltered(ctx, profSrc, hier, profCfg, &sc); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	profResults := measureBest(profVariants, *count)
	profN := len(profCaps) * *accesses
	exactGeomRes := toResult("Profile_8Geometries", profVariants[0], profN, profResults[0])
	profiledRes := toResult("Profile_8Geometries", profVariants[1], profN, profResults[1])
	rep.Results = append(rep.Results, exactGeomRes, profiledRes)
	rep.Comparisons = append(rep.Comparisons, compare("Profile_8Geometries", "profile", exactGeomRes, profiledRes))

	fmt.Fprintln(os.Stderr, "measuring TraceGen...")
	gen := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := workload.Generate(p, workload.Options{Accesses: *accesses, Threads: 4, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	genTrace, err := workload.Generate(p, workload.Options{Accesses: *accesses, Threads: 4, Seed: 1})
	if err != nil {
		fatal(err)
	}
	rep.Results = append(rep.Results, toResult("TraceGen", variant{}, len(genTrace.Accesses), gen))

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatal(err)
		}
		f.Close()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	// CI gate: the streaming pipeline must stay within the configured
	// margin of the materialized path. Everything else in the report is
	// informational — timing drifts with the runner, but a streaming
	// regression past the margin means the ring pipeline itself broke.
	if *gateStreamPct >= 0 {
		failed := false
		for _, c := range rep.Comparisons {
			if c.Dimension != "input" {
				continue
			}
			if c.ImprovementPct < -*gateStreamPct {
				fmt.Fprintf(os.Stderr, "benchreport: GATE FAIL %s: streaming is %.1f%% slower than materialized (margin %.1f%%)\n",
					c.Benchmark, -c.ImprovementPct, *gateStreamPct)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchreport: streaming gate passed (margin %.1f%%)\n", *gateStreamPct)
	}
	// Profile gate: one reuse-distance profile must beat the 8-geometry
	// exact sweep by the configured factor — the headline claim of the
	// sweep estimator, and the regression canary for the Fenwick hot path.
	if *gateProfileX >= 0 {
		for _, c := range rep.Comparisons {
			if c.Dimension != "profile" {
				continue
			}
			if c.SpeedupX < *gateProfileX {
				fmt.Fprintf(os.Stderr, "benchreport: GATE FAIL %s: profiled sweep only %.2fx faster than exact (floor %.1fx)\n",
					c.Benchmark, c.SpeedupX, *gateProfileX)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchreport: profile gate passed (%.1fx >= %.1fx)\n", c.SpeedupX, *gateProfileX)
		}
	}
}
