// Command benchreport measures the simulator hot loop with both core
// schedulers — the min-heap default and the historical linear scan —
// plus the trace generator, and writes the results as JSON. The
// committed BENCH_hotloop.json at the repository root is this program's
// output: the repo's perf baseline, regenerated whenever the hot path
// changes (see the README's Performance section).
//
// Usage:
//
//	go run ./cmd/benchreport [-o BENCH_hotloop.json] [-accesses 100000] [-benchtime 1s] [-count 3]
//
// Each configuration is measured -count times with the two schedulers
// interleaved and the fastest repetition kept, so co-tenant noise and
// frequency drift do not skew the comparison.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// benchResult is one measured configuration.
type benchResult struct {
	Benchmark   string  `json:"benchmark"`
	Scheduler   string  `json:"scheduler,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	NsPerAccess float64 `json:"ns_per_access"`
}

// comparison pairs the two schedulers on one core count.
type comparison struct {
	Benchmark      string  `json:"benchmark"`
	LinearScanNsOp float64 `json:"linear_scan_ns_per_op"`
	HeapNsOp       float64 `json:"heap_ns_per_op"`
	ImprovementPct float64 `json:"improvement_pct"`
}

// report is the BENCH_hotloop.json schema.
type report struct {
	Schema         string        `json:"schema"`
	GoVersion      string        `json:"go_version"`
	GOOS           string        `json:"goos"`
	GOARCH         string        `json:"goarch"`
	Workload       string        `json:"workload"`
	AccessesPerRun int           `json:"accesses_per_run"`
	Results        []benchResult `json:"results"`
	Comparisons    []comparison  `json:"comparisons"`
}

func measureSim(cfg system.Config, tr *trace.Trace, sched system.Scheduler) testing.BenchmarkResult {
	var scratch system.Scratch
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := system.RunScheduled(context.Background(), cfg, tr, sched, &scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// nsPerOp extracts the float ns/op of a measurement.
func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// measureBest repeats the two-scheduler measurement `count` times,
// interleaving the schedulers within each repetition so machine drift
// (frequency scaling, co-tenants) biases both sides equally, and keeps
// each scheduler's fastest repetition — external noise only ever adds
// time, so the minimum is the most repeatable estimator.
func measureBest(cfg system.Config, tr *trace.Trace, count int) (scan, heap testing.BenchmarkResult) {
	for rep := 0; rep < count; rep++ {
		runtime.GC()
		s := measureSim(cfg, tr, system.SchedLinearScan)
		h := measureSim(cfg, tr, system.SchedHeap)
		if rep == 0 || nsPerOp(s) < nsPerOp(scan) {
			scan = s
		}
		if rep == 0 || nsPerOp(h) < nsPerOp(heap) {
			heap = h
		}
	}
	return scan, heap
}

func toResult(name, sched string, accesses int, r testing.BenchmarkResult) benchResult {
	ns := nsPerOp(r)
	return benchResult{
		Benchmark:   name,
		Scheduler:   sched,
		Iterations:  r.N,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		NsPerAccess: ns / float64(accesses),
	}
}

func main() {
	testing.Init() // register testing's flags so test.benchtime is settable
	out := flag.String("o", "BENCH_hotloop.json", "output path ('-' for stdout)")
	accesses := flag.Int("accesses", 100_000, "base trace length per run")
	benchtime := flag.Duration("benchtime", time.Second, "target time per measurement")
	count := flag.Int("count", 3, "repetitions per configuration (best is kept)")
	flag.Parse()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	const workloadName = "ft"
	p, err := workload.ByName(workloadName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	rep := report{
		Schema:         "nvmllc/bench_hotloop/v1",
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Workload:       workloadName,
		AccessesPerRun: *accesses,
	}
	for _, cores := range []int{4, 16, 64} {
		tr, err := workload.Generate(p, workload.Options{Accesses: *accesses, Threads: cores, Seed: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		cfg := system.Gainestown(reference.SRAMBaseline()).WithCores(cores)
		name := fmt.Sprintf("HotLoop_%dCores", cores)
		n := len(tr.Accesses)
		fmt.Fprintf(os.Stderr, "measuring %s (best of %d)...\n", name, *count)
		scan, heap := measureBest(cfg, tr, *count)
		scanRes := toResult(name, system.SchedLinearScan.String(), n, scan)
		heapRes := toResult(name, system.SchedHeap.String(), n, heap)
		rep.Results = append(rep.Results, scanRes, heapRes)
		rep.Comparisons = append(rep.Comparisons, comparison{
			Benchmark:      name,
			LinearScanNsOp: scanRes.NsPerOp,
			HeapNsOp:       heapRes.NsPerOp,
			ImprovementPct: 100 * (scanRes.NsPerOp - heapRes.NsPerOp) / scanRes.NsPerOp,
		})
	}

	fmt.Fprintln(os.Stderr, "measuring TraceGen...")
	gen := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := workload.Generate(p, workload.Options{Accesses: *accesses, Threads: 4, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	genTrace, err := workload.Generate(p, workload.Options{Accesses: *accesses, Threads: 4, Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	rep.Results = append(rep.Results, toResult("TraceGen", "", len(genTrace.Accesses), gen))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
