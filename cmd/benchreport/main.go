// Command benchreport measures the simulator hot loop across its five
// performance dimensions — core scheduler (min-heap default vs the
// historical linear scan), tag-store layout (packed struct-of-arrays vs
// the retained slice-of-struct reference), trace input (whole-trace
// materialization vs the chunked streaming pipeline), wear-driven
// fault injection (disabled vs enabled-but-quiescent, expected ~0%
// disabled overhead since a zero-value fault config skips every fault
// branch), and epoch sampling (the -timeline instrumentation, expected
// <5% enabled and 0% disabled: one nil check per access) — plus the
// trace generator, and writes the results as JSON. The committed
// BENCH_hotloop.json at the repository root is this program's output:
// the repo's perf baseline, regenerated whenever the hot path changes
// (see the README's Performance section).
//
// Usage:
//
//	go run ./cmd/benchreport [-o BENCH_hotloop.json] [-accesses 100000]
//	    [-benchtime 1s] [-count 3] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// Each configuration is measured -count times with every variant
// interleaved within a repetition and the fastest repetition kept, so
// co-tenant noise and frequency drift bias all variants equally and the
// minimum is the most repeatable estimator.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"nvmllc/internal/cache"
	"nvmllc/internal/fault"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// benchResult is one measured configuration.
type benchResult struct {
	Benchmark   string  `json:"benchmark"`
	Scheduler   string  `json:"scheduler,omitempty"`
	Layout      string  `json:"layout,omitempty"`
	Input       string  `json:"input,omitempty"`    // "materialized" or "streaming"
	Faults      string  `json:"faults,omitempty"`   // "disabled" or "enabled"
	Sampling    string  `json:"sampling,omitempty"` // "disabled" or "enabled"
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	NsPerAccess float64 `json:"ns_per_access"`
}

// comparison pairs two variants along one dimension on one core count.
type comparison struct {
	Benchmark      string  `json:"benchmark"`
	Dimension      string  `json:"dimension"` // "scheduler", "layout", "input", "faults" or "sampling"
	Baseline       string  `json:"baseline"`
	Contender      string  `json:"contender"`
	BaselineNsOp   float64 `json:"baseline_ns_per_op"`
	ContenderNsOp  float64 `json:"contender_ns_per_op"`
	ImprovementPct float64 `json:"improvement_pct"`
	// BytesReductionX is baseline bytes_per_op over contender bytes_per_op
	// (only reported for the input dimension, where the streaming
	// pipeline's O(chunk) memory is the point of the comparison).
	BytesReductionX float64 `json:"bytes_reduction_x,omitempty"`
}

// report is the BENCH_hotloop.json schema.
type report struct {
	Schema         string        `json:"schema"`
	GoVersion      string        `json:"go_version"`
	GOOS           string        `json:"goos"`
	GOARCH         string        `json:"goarch"`
	Workload       string        `json:"workload"`
	AccessesPerRun int           `json:"accesses_per_run"`
	Results        []benchResult `json:"results"`
	Comparisons    []comparison  `json:"comparisons"`
}

// variant is one measurable configuration of the hot loop.
type variant struct {
	scheduler string
	layout    string
	input     string
	faults    string
	sampling  string
	bench     func(b *testing.B)
}

// nsPerOp extracts the float ns/op of a measurement.
func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// measureBest repeats the whole variant set `count` times, interleaving
// the variants within each repetition so machine drift (frequency
// scaling, co-tenants) biases every side equally, and keeps each
// variant's fastest repetition — external noise only ever adds time, so
// the minimum is the most repeatable estimator.
func measureBest(variants []variant, count int) []testing.BenchmarkResult {
	best := make([]testing.BenchmarkResult, len(variants))
	for rep := 0; rep < count; rep++ {
		for i, v := range variants {
			runtime.GC()
			r := testing.Benchmark(v.bench)
			if rep == 0 || nsPerOp(r) < nsPerOp(best[i]) {
				best[i] = r
			}
		}
	}
	return best
}

func toResult(name string, v variant, accesses int, r testing.BenchmarkResult) benchResult {
	ns := nsPerOp(r)
	return benchResult{
		Benchmark:   name,
		Scheduler:   v.scheduler,
		Layout:      v.layout,
		Input:       v.input,
		Faults:      v.faults,
		Sampling:    v.sampling,
		Iterations:  r.N,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		NsPerAccess: ns / float64(accesses),
	}
}

// compare builds the comparison row for one dimension from the baseline
// and contender results.
func compare(name, dimension string, base, cont benchResult) comparison {
	c := comparison{
		Benchmark:      name,
		Dimension:      dimension,
		BaselineNsOp:   base.NsPerOp,
		ContenderNsOp:  cont.NsPerOp,
		ImprovementPct: 100 * (base.NsPerOp - cont.NsPerOp) / base.NsPerOp,
	}
	switch dimension {
	case "scheduler":
		c.Baseline, c.Contender = base.Scheduler, cont.Scheduler
	case "layout":
		c.Baseline, c.Contender = base.Layout, cont.Layout
	case "input":
		c.Baseline, c.Contender = base.Input, cont.Input
		if cont.BytesPerOp > 0 {
			c.BytesReductionX = float64(base.BytesPerOp) / float64(cont.BytesPerOp)
		}
	case "faults":
		c.Baseline, c.Contender = base.Faults, cont.Faults
	case "sampling":
		c.Baseline, c.Contender = base.Sampling, cont.Sampling
	}
	return c
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}

func main() {
	testing.Init() // register testing's flags so test.benchtime is settable
	out := flag.String("o", "BENCH_hotloop.json", "output path ('-' for stdout)")
	accesses := flag.Int("accesses", 100_000, "base trace length per run")
	benchtime := flag.Duration("benchtime", time.Second, "target time per measurement")
	count := flag.Int("count", 3, "repetitions per configuration (best is kept)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurements to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	const workloadName = "ft"
	p, err := workload.ByName(workloadName)
	if err != nil {
		fatal(err)
	}
	rep := report{
		Schema:         "nvmllc/bench_hotloop/v3",
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Workload:       workloadName,
		AccessesPerRun: *accesses,
	}
	ctx := context.Background()
	for _, cores := range []int{4, 16, 64} {
		opts := workload.Options{Accesses: *accesses, Threads: cores, Seed: 1}
		tr, err := workload.Generate(p, opts)
		if err != nil {
			fatal(err)
		}
		gen, err := workload.NewGenerator(p, opts)
		if err != nil {
			fatal(err)
		}
		cfg := system.Gainestown(reference.SRAMBaseline()).WithCores(cores)
		cfgFault := cfg
		cfgFault.Fault = fault.Config{Options: fault.Options{EnduranceWrites: 1e15}}
		cfgTimeline := cfg
		cfgTimeline.Timeline = &system.TimelineConfig{} // wear tracking off: isolate the sampler's own cost
		name := fmt.Sprintf("HotLoop_%dCores", cores)
		n := len(tr.Accesses)

		runBench := func(run func(scratch *system.Scratch) error) func(b *testing.B) {
			var scratch system.Scratch
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := run(&scratch); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		variants := []variant{
			{scheduler: system.SchedLinearScan.String(), layout: cache.LayoutSoA.String(), input: "materialized",
				bench: runBench(func(scratch *system.Scratch) error {
					_, err := system.RunScheduled(ctx, cfg, tr, system.SchedLinearScan, scratch)
					return err
				})},
			{scheduler: system.SchedHeap.String(), layout: cache.LayoutAoS.String(), input: "materialized",
				bench: runBench(func(scratch *system.Scratch) error {
					_, err := system.RunLayout(ctx, cfg, tr, cache.LayoutAoS, scratch)
					return err
				})},
			{scheduler: system.SchedHeap.String(), layout: cache.LayoutSoA.String(), input: "materialized",
				bench: runBench(func(scratch *system.Scratch) error {
					_, err := system.RunWith(ctx, cfg, tr, scratch)
					return err
				})},
			{scheduler: system.SchedHeap.String(), layout: cache.LayoutSoA.String(), input: "streaming",
				bench: runBench(func(scratch *system.Scratch) error {
					gen.Reset()
					_, err := system.RunStreamWith(ctx, cfg, gen, scratch)
					return err
				})},
			// Faults enabled but quiescent: a finite endurance far beyond
			// the trace's wear, so the per-write fault bookkeeping runs
			// without any condemnations. The SoA materialized variant above
			// doubles as the faults-disabled baseline (zero-value fault
			// config ⇒ nil injector ⇒ the historical hot path, ~0%
			// overhead by construction).
			{scheduler: system.SchedHeap.String(), layout: cache.LayoutSoA.String(), input: "materialized", faults: "enabled",
				bench: runBench(func(scratch *system.Scratch) error {
					_, err := system.RunWith(ctx, cfgFault, tr, scratch)
					return err
				})},
			// Epoch sampling on: per-epoch delta capture in the hot loop.
			// The same SoA materialized baseline covers sampling-disabled
			// (a nil sampler costs one pointer check per retired batch).
			{scheduler: system.SchedHeap.String(), layout: cache.LayoutSoA.String(), input: "materialized", sampling: "enabled",
				bench: runBench(func(scratch *system.Scratch) error {
					_, err := system.RunWith(ctx, cfgTimeline, tr, scratch)
					return err
				})},
		}
		variants[2].faults = "disabled"
		variants[2].sampling = "disabled"
		fmt.Fprintf(os.Stderr, "measuring %s (%d variants, best of %d)...\n", name, len(variants), *count)
		results := measureBest(variants, *count)
		scanRes := toResult(name, variants[0], n, results[0])
		aosRes := toResult(name, variants[1], n, results[1])
		soaRes := toResult(name, variants[2], n, results[2])
		streamRes := toResult(name, variants[3], n, results[3])
		faultRes := toResult(name, variants[4], n, results[4])
		samplingRes := toResult(name, variants[5], n, results[5])
		rep.Results = append(rep.Results, scanRes, aosRes, soaRes, streamRes, faultRes, samplingRes)
		rep.Comparisons = append(rep.Comparisons,
			compare(name, "scheduler", scanRes, soaRes),
			compare(name, "layout", aosRes, soaRes),
			compare(name, "input", soaRes, streamRes),
			compare(name, "faults", soaRes, faultRes),
			compare(name, "sampling", soaRes, samplingRes),
		)
	}

	fmt.Fprintln(os.Stderr, "measuring TraceGen...")
	gen := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := workload.Generate(p, workload.Options{Accesses: *accesses, Threads: 4, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	genTrace, err := workload.Generate(p, workload.Options{Accesses: *accesses, Threads: 4, Seed: 1})
	if err != nil {
		fatal(err)
	}
	rep.Results = append(rep.Results, toResult("TraceGen", variant{}, len(genTrace.Accesses), gen))

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatal(err)
		}
		f.Close()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
