package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errc := make(chan error, 1)
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		_, cErr := io.Copy(&buf, r)
		errc <- cErr
		close(done)
	}()
	ferr := f()
	w.Close()
	<-done
	if cErr := <-errc; cErr != nil {
		t.Fatal(cErr)
	}
	if ferr != nil {
		t.Fatal(ferr)
	}
	return buf.String()
}

func TestPrintTableII(t *testing.T) {
	out := capture(t, printTableII)
	for _, want := range []string{"Table II", "Chung", "Zhang", "†", "*", "reset pulse [ns]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDerive(t *testing.T) {
	out := capture(t, func() error { return runDerive("Kang") })
	for _, want := range []string{"Stripping Kang_P", "heuristic-3", "identical reset current"} {
		if !strings.Contains(out, want) {
			t.Errorf("derive output missing %q", want)
		}
	}
}

func TestRunDeriveUnknownCell(t *testing.T) {
	if err := runDerive("nosuch"); err == nil {
		t.Error("unknown cell accepted")
	}
}

func TestExportAndLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	out := capture(t, func() error { return runExport(path) })
	if !strings.Contains(out, "wrote 11 cell models") {
		t.Errorf("export output: %q", out)
	}
	loaded := capture(t, func() error { return runLoad(path) })
	for _, want := range []string{"Table II", "Zhang", "†"} {
		if !strings.Contains(loaded, want) {
			t.Errorf("loaded table missing %q", want)
		}
	}
	if err := runLoad("/nonexistent.json"); err == nil {
		t.Error("missing file accepted")
	}
	if err := runExport("/nonexistent-dir/x.json"); err == nil {
		t.Error("unwritable path accepted")
	}
}
