// Command nvmcells prints the released NVM cell models of the paper's
// Table II with their heuristic provenance, and can demonstrate the
// modeling heuristics by stripping a cell back to its reported parameters
// and re-deriving the rest.
//
// Usage:
//
//	nvmcells              print Table II with provenance markers
//	nvmcells -derive Kang strip a cell and show each heuristic derivation
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nvmllc/internal/cliutil"
	"nvmllc/internal/nvm"
	"nvmllc/internal/tablefmt"
	"nvmllc/internal/telemetry"
)

func main() {
	derive := flag.String("derive", "", "cell name to strip and re-derive with the modeling heuristics")
	export := flag.String("export", "", "write the released cell models to this JSON file")
	load := flag.String("load", "", "print Table II from a previously exported JSON file instead of the built-in corpus")
	debugAddr := cliutil.DebugAddrFlag(nil)
	flag.Parse()

	cliutil.Main("nvmcells", func(ctx context.Context) error {
		if *debugAddr != "" {
			srv, err := cliutil.StartDebugServer(*debugAddr, telemetry.New())
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "nvmcells: debug server on http://%s/\n", srv.Addr())
		}
		switch {
		case *derive != "":
			return runDerive(*derive)
		case *export != "":
			return runExport(*export)
		case *load != "":
			return runLoad(*load)
		}
		return printTableII()
	})
}

// runExport writes the model-release JSON file (the paper's published
// artifact).
func runExport(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := nvm.ExportJSON(f, nvm.CorpusWithSRAM()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d cell models to %s\n", len(nvm.CorpusWithSRAM()), path)
	return nil
}

// runLoad prints the Table II view of an imported model file.
func runLoad(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cells, err := nvm.ImportJSON(f)
	if err != nil {
		return err
	}
	var nvmOnly []*nvm.Cell
	for _, c := range cells {
		if c.Class != nvm.SRAM {
			nvmOnly = append(nvmOnly, c)
		}
	}
	return renderTableII(nvmOnly)
}

func printTableII() error {
	return renderTableII(nvm.Corpus())
}

func renderTableII(corpus []*nvm.Cell) error {
	headers := []string{"parameter"}
	for _, c := range corpus {
		headers = append(headers, c.Name)
	}
	t := tablefmt.New("Table II: NVM cell parameters († heuristic 1, * heuristics 2/3)", headers...)

	meta := [][]string{
		{"class"}, {"year"}, {"access device"}, {"cell levels"},
	}
	for _, c := range corpus {
		meta[0] = append(meta[0], c.Class.String())
		meta[1] = append(meta[1], fmt.Sprintf("%d", c.Year))
		meta[2] = append(meta[2], c.AccessDevice)
		meta[3] = append(meta[3], fmt.Sprintf("%d", c.CellLevels))
	}
	for _, row := range meta {
		t.AddRow(row...)
	}
	for _, param := range nvm.ParamNames {
		row := []string{param}
		any := false
		for _, c := range corpus {
			p := c.Params()[param]
			if !p.Known() {
				row = append(row, "")
				continue
			}
			any = true
			mark := ""
			switch p.Source {
			case nvm.HeuristicElectrical:
				mark = "†"
			case nvm.HeuristicInterpolation, nvm.HeuristicSimilarity:
				mark = "*"
			}
			row = append(row, tablefmt.FormatFloat(p.Value)+mark)
		}
		if any {
			t.AddRow(row...)
		}
	}
	return t.Render(os.Stdout)
}

func runDerive(name string) error {
	cell, err := nvm.ByName(name)
	if err != nil {
		return err
	}
	stripped := nvm.Strip(cell)
	fmt.Printf("Stripping %s to reported-only parameters; missing: %v\n\n",
		cell.DisplayName(), stripped.MissingParams())
	derivs, err := nvm.Complete(stripped, nvm.Corpus())
	if err != nil {
		return err
	}
	t := tablefmt.New("Heuristic derivations", "parameter", "value", "heuristic", "derivation")
	for _, d := range derivs {
		t.AddRow(d.Param, tablefmt.FormatFloat(d.Value), d.Source.String(), d.Note)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	t2 := tablefmt.New("Re-derived vs released model", "parameter", "re-derived", "released")
	for _, pn := range nvm.ParamNames {
		a, b := stripped.Params()[pn], cell.Params()[pn]
		if !b.Known() {
			continue
		}
		t2.AddRow(pn, tablefmt.FormatFloat(a.Value), tablefmt.FormatFloat(b.Value))
	}
	return t2.Render(os.Stdout)
}
