// Package nvmllc_test benchmarks regenerate every table and figure of the
// paper's evaluation (see DESIGN.md's experiment index):
//
//	BenchmarkTableII_*   — cell models + modeling heuristics (Table II)
//	BenchmarkTableIII_*  — NVSim-style LLC model generation (Table III)
//	BenchmarkTableV_*    — workload LLC MPKI (Table V)
//	BenchmarkTableVI_*   — workload characterization (Table VI)
//	BenchmarkFigure1a/1b — fixed-capacity speedup/energy/ED²P (Figure 1)
//	BenchmarkFigure2a/2b — fixed-area speedup/energy/ED²P (Figure 2)
//	BenchmarkCoreSweep   — Section V-C multi-core sensitivity study
//	BenchmarkFigure4     — feature-correlation heatmaps (Figure 4)
//	BenchmarkAblation_*  — design-choice ablations called out in DESIGN.md
//
// Benchmark iterations use reduced trace lengths; the cmd/figures binary
// regenerates the artifacts at full scale.
package nvmllc_test

import (
	"context"
	"testing"

	"nvmllc/internal/cache"
	"nvmllc/internal/mainmem"
	"nvmllc/internal/nvm"
	"nvmllc/internal/nvsim"
	"nvmllc/internal/prism"
	"nvmllc/internal/reference"
	"nvmllc/internal/sweep"
	"nvmllc/internal/system"
	"nvmllc/internal/telemetry"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// benchCfg is the reduced-scale sweep configuration for benchmarks.
func benchCfg() sweep.Config {
	return sweep.Config{Opts: workload.Options{Accesses: 40_000, Seed: 1}}
}

func BenchmarkTableII_Heuristics(b *testing.B) {
	corpus := nvm.Corpus()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range corpus {
			stripped := nvm.Strip(c)
			if _, err := nvm.Complete(stripped, corpus); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTableIII_FixedCapacity(b *testing.B) {
	cells := nvm.CorpusWithSRAM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range cells {
			org := nvsim.GainestownLLC()
			if c.Class == nvm.SRAM {
				org.ProcessNM = 45
			}
			if _, err := nvsim.Generate(c, org); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTableIII_FixedArea(b *testing.B) {
	cells := nvm.CorpusWithSRAM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range cells {
			org := nvsim.GainestownLLC()
			if c.Class == nvm.SRAM {
				org.ProcessNM = 45
			}
			if _, err := nvsim.FitCapacityToArea(c, org, reference.SRAMBaselineAreaMM2); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTableV_MPKI(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.TableV(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVI_Characterization(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.TableVI(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1a(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Figure1a(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1b(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Figure1b(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2a(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Figure2a(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2b(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Figure2b(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreSweep(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.CoreSweep(context.Background(), "ft", []int{1, 4, 16}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	cfg := sweep.Figure4Config{Config: benchCfg()}
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Figure4(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_WriteContention is the DESIGN.md ablation of the
// paper's writes-off-critical-path assumption: the same fixed-capacity
// sweep with LLC bank write contention modeled.
func BenchmarkAblation_WriteContention(b *testing.B) {
	cfg := benchCfg()
	cfg.WriteContention = true
	for i := 0; i < b.N; i++ {
		fig, err := sweep.RunFigure(context.Background(), "ablation", reference.FixedCapacityModels(),
			[]string{"is", "lu"}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = fig
	}
}

// BenchmarkAblation_MLCSensing measures the cost of the MLC two-step
// sensing model (DESIGN.md design-choice ablation): Xue with 1 vs 2
// levels.
func BenchmarkAblation_MLCSensing(b *testing.B) {
	slc := nvm.Xue()
	slc.CellLevels = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := nvsim.Generate(nvm.Xue(), nvsim.GainestownLLC()); err != nil {
			b.Fatal(err)
		}
		if _, err := nvsim.Generate(slc, nvsim.GainestownLLC()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks of the substrates ---

func BenchmarkSimulatorThroughput(b *testing.B) {
	p, err := workload.ByName("cg")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 200_000})
	if err != nil {
		b.Fatal(err)
	}
	cfg := system.Gainestown(reference.SRAMBaseline())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := system.Run(context.Background(), cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(tr.Accesses)))
}

// BenchmarkTelemetryOverhead quantifies the cost of full instrumentation
// on the simulator hot path: the same run with no registry (nil-safe
// no-op instruments) vs a live registry collecting the DRAM wait
// histogram and end-of-run publication. The acceptance bound for this
// design is < 5% slowdown instrumented vs no-op.
func BenchmarkTelemetryOverhead(b *testing.B) {
	p, err := workload.ByName("cg")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 200_000})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("noop", func(b *testing.B) {
		cfg := system.Gainestown(reference.SRAMBaseline())
		for i := 0; i < b.N; i++ {
			if _, err := system.Run(context.Background(), cfg, tr); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(tr.Accesses)))
	})
	b.Run("instrumented", func(b *testing.B) {
		cfg := system.Gainestown(reference.SRAMBaseline())
		cfg.Telemetry = telemetry.New()
		for i := 0; i < b.N; i++ {
			if _, err := system.Run(context.Background(), cfg, tr); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(tr.Accesses)))
	})
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	p, err := workload.ByName("mg")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(p, workload.Options{Accesses: 100_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrismCharacterize(b *testing.B) {
	p, err := workload.ByName("leela")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 100_000})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prism.Characterize(tr, prism.Config{})
	}
}

func BenchmarkTraceCodec(b *testing.B) {
	p, err := workload.ByName("ft")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 50_000})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := trace.Encode(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// writeCounter is a throwaway io.Writer.
type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// BenchmarkAblation_ReplacementPolicy compares the LLC replacement
// policies (DESIGN.md ablation): LRU (the paper's configuration) vs SRRIP
// vs Random on a scan-heavy workload.
func BenchmarkAblation_ReplacementPolicy(b *testing.B) {
	p, err := workload.ByName("mg")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 60_000})
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []cache.Policy{cache.LRU, cache.SRRIP, cache.Random} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := system.Gainestown(reference.SRAMBaseline())
			cfg.LLCPolicy = pol
			for i := 0; i < b.N; i++ {
				if _, err := system.Run(context.Background(), cfg, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_DeadBlockBypass measures the NVM write-bypass
// technique (the paper's related-work category 2) against the baseline on
// a PCRAM LLC.
func BenchmarkAblation_DeadBlockBypass(b *testing.B) {
	p, err := workload.ByName("bzip2")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 60_000})
	if err != nil {
		b.Fatal(err)
	}
	kang, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		b.Fatal(err)
	}
	for _, byp := range []system.BypassPolicy{system.BypassNone, system.BypassDeadBlock} {
		b.Run(byp.String(), func(b *testing.B) {
			cfg := system.Gainestown(kang)
			cfg.LLCBypass = byp
			for i := 0; i < b.N; i++ {
				if _, err := system.Run(context.Background(), cfg, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLifetimeStudy regenerates the Section VII future-work
// endurance/lifetime experiment.
func BenchmarkLifetimeStudy(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Lifetime(context.Background(), cfg, []string{"Kang_P"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_3DStacking compares planar vs 4-layer 3D LLC model
// generation (the DESTINY-style extension).
func BenchmarkAblation_3DStacking(b *testing.B) {
	org := nvsim.GainestownLLC()
	org3d := org
	org3d.Layers = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := nvsim.Generate(nvm.Hayakawa(), org); err != nil {
			b.Fatal(err)
		}
		if _, err := nvsim.Generate(nvm.Hayakawa(), org3d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_MainMemoryTech compares DRAM vs NVM main memories
// below the SRAM LLC using the NVMain-style model — the "NVMs down the
// memory hierarchy" trajectory of the paper's Section II.
func BenchmarkAblation_MainMemoryTech(b *testing.B) {
	p, err := workload.ByName("mg")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 60_000})
	if err != nil {
		b.Fatal(err)
	}
	for _, tech := range []mainmem.Tech{mainmem.DRAM, mainmem.PCRAMMem, mainmem.STTRAMMem, mainmem.RRAMMem} {
		b.Run(tech.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mem, err := mainmem.New(mainmem.Preset(tech))
				if err != nil {
					b.Fatal(err)
				}
				cfg := system.Gainestown(reference.SRAMBaseline())
				cfg.Memory = mem
				if _, err := system.Run(context.Background(), cfg, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_HybridLLC compares a pure PCRAM LLC against the
// hybrid SRAM/NVM placement-and-migration design (the paper's cited
// technique [7]) on a write-heavy workload.
func BenchmarkAblation_HybridLLC(b *testing.B) {
	p, err := workload.ByName("ua")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 60_000})
	if err != nil {
		b.Fatal(err)
	}
	kang, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pure-PCRAM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := system.Run(context.Background(), system.Gainestown(kang), tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		cfg := system.Gainestown(kang)
		cfg.Hybrid = &system.HybridConfig{
			SRAM: reference.SRAMBaseline(), NVM: kang, SRAMWays: 4,
		}
		for i := 0; i < b.N; i++ {
			if _, err := system.Run(context.Background(), cfg, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}
