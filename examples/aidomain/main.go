// Aidomain: the paper's Section VI specialized-system study, end to end.
//
// Emulates selecting an LLC technology for a hypothetical statistical-
// inference (AI) domain-specific architecture: characterize the three
// cpu2017 AI workloads, simulate them on the best NVM LLCs in both
// configurations, correlate architecture-agnostic features with energy and
// speedup (Figure 4), and print the resulting design guidance — that for
// AI use cases the write-side features (write entropy, unique/90% write
// footprints) predict outcomes while total read/write counts do not, so
// the designer should pick a density-optimized NVM.
//
// Run with: go run ./examples/aidomain
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"nvmllc/internal/prism"
	"nvmllc/internal/sweep"
	"nvmllc/internal/tablefmt"
	"nvmllc/internal/workload"
)

func main() {
	opts := workload.Options{Accesses: 400_000}

	// 1. Characterize the AI workloads with the PRISM-style profiler.
	fmt.Println("=== AI workload characterization ===")
	t := tablefmt.New("", "workload", "H_wg", "w_uniq", "90ft_w", "r_total", "w_total")
	for _, name := range workload.AINames() {
		p, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := workload.Generate(p, opts)
		if err != nil {
			log.Fatal(err)
		}
		f := prism.Characterize(tr, prism.Config{})
		t.AddRowf(name, f.GlobalWriteEntropy, f.UniqueWrites, f.Footprint90Writes,
			f.TotalReads, f.TotalWrites)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 2. Correlate features with simulated energy/speedup (Figure 4).
	fmt.Println("\n=== Feature correlation (Figure 4) ===")
	panels, err := sweep.Figure4(context.Background(), sweep.Figure4Config{
		Config: sweep.Config{Opts: opts},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range panels {
		if err := p.Heatmap().Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// 3. Derive the design guidance the paper draws.
	fmt.Println("=== Design guidance ===")
	writeFeatures := []string{"H_wg", "H_wl", "w_uniq", "90%ft_w"}
	totals := []string{"r_total", "w_total"}
	for _, p := range panels {
		bestWrite, bestTotal := 0.0, 0.0
		for _, f := range writeFeatures {
			if r, err := p.FeatureR("energy", f); err == nil && r > bestWrite {
				bestWrite = r
			}
		}
		for _, f := range totals {
			if r, err := p.FeatureR("energy", f); err == nil && r > bestTotal {
				bestTotal = r
			}
		}
		verdict := "write-side features dominate → pick a density-optimized NVM"
		if bestWrite <= bestTotal {
			verdict = "totals dominate (general-purpose behavior)"
		}
		fmt.Printf("%-28s energy: max write-feature |r|=%.2f, max totals |r|=%.2f — %s\n",
			p.Name, bestWrite, bestTotal, verdict)
	}
	fmt.Println("\nPaper's conclusion: for AI use cases the working set (write footprint,")
	fmt.Println("write entropy) predicts NVM-based LLC energy and performance — total")
	fmt.Println("read/write counts, the classic NVM selection metric, do not.")
}
