// Tracestudy: characterize a custom trace and place it in the paper's
// workload landscape.
//
// Builds a custom memory trace by hand (a blocked matrix-multiply-like
// kernel), saves and reloads it with the binary trace codec, profiles it
// with the PRISM-style framework, and then compares its features against
// the paper's Table VI workloads to find its nearest published neighbor —
// the workflow a user follows to predict how their own application would
// behave on an NVM-based LLC.
//
// Run with: go run ./examples/tracestudy
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"sort"

	"nvmllc/internal/prism"
	"nvmllc/internal/reference"
	"nvmllc/internal/stats"
	"nvmllc/internal/trace"
)

func main() {
	// 1. Build a custom trace: C = A×B over 256×256 float64 matrices,
	// blocked 32×32 — streaming reads over A and B, concentrated writes
	// into the C block.
	tr := matmulTrace(256, 32)
	fmt.Printf("built %s: %d accesses, %d instructions\n", tr.Name, len(tr.Accesses), tr.InstrCount)

	// 2. Round-trip through the binary trace codec.
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		log.Fatal(err)
	}
	decoded, err := trace.Decode(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("codec round-trip: %d bytes (%.2f bytes/access)\n\n",
		buf.Len(), float64(buf.Len())/float64(len(tr.Accesses)))

	// 3. Characterize.
	f := prism.Characterize(decoded, prism.Config{})
	fmt.Println("features:", f)

	// 4. Nearest published workload by normalized feature distance over
	// the scale-free features (entropies and concentration ratios).
	neighbors := rank(f)
	fmt.Println("\nnearest Table VI workloads (by entropy/concentration signature):")
	for i, n := range neighbors {
		if i >= 3 {
			break
		}
		fmt.Printf("  %d. %-10s distance %.3f\n", i+1, n.name, n.dist)
	}
	fmt.Printf("\nA designer would start NVM selection for this kernel from the %s row\n", neighbors[0].name)
	fmt.Println("of the paper's results (Figures 1-2), per the Section VI framework.")

	// 5. Sanity: a rank correlation between our kernel's feature vector
	// and its nearest neighbor's confirms the signature match.
	best := reference.PaperFeatures()[neighbors[0].name]
	rho, ok, err := stats.Spearman(signature(f), signature(best))
	if err == nil && ok {
		fmt.Printf("Spearman rank correlation with %s signature: %.2f\n", neighbors[0].name, rho)
	}
}

// matmulTrace emits the access stream of a blocked matrix multiply.
func matmulTrace(n, blk int) *trace.Trace {
	const (
		baseA = 0x10_0000_0000
		baseB = 0x20_0000_0000
		baseC = 0x30_0000_0000
		elem  = 8
	)
	tr := &trace.Trace{Name: "matmul", Threads: 1}
	add := func(addr uint64, k trace.Kind) {
		tr.Accesses = append(tr.Accesses, trace.Access{Addr: addr, Kind: k})
	}
	for ii := 0; ii < n; ii += blk {
		for jj := 0; jj < n; jj += blk {
			for kk := 0; kk < n; kk += blk {
				for i := ii; i < ii+blk; i++ {
					for k := kk; k < kk+blk; k++ {
						add(baseA+uint64(i*n+k)*elem, trace.Read)
						// Inner j loop accesses one B row and one C row;
						// sample every 8th element to keep the trace small.
						for j := jj; j < jj+blk; j += 8 {
							add(baseB+uint64(k*n+j)*elem, trace.Read)
							add(baseC+uint64(i*n+j)*elem, trace.Write)
						}
					}
				}
			}
		}
	}
	tr.InstrCount = uint64(len(tr.Accesses)) * 2
	return tr
}

type neighbor struct {
	name string
	dist float64
}

// signature extracts scale-free features: the four entropies plus the
// read/write concentration ratios and the write share.
func signature(f prism.Features) []float64 {
	concR, concW := 0.0, 0.0
	if f.UniqueReads > 0 {
		concR = float64(f.Footprint90Reads) / float64(f.UniqueReads)
	}
	if f.UniqueWrites > 0 {
		concW = float64(f.Footprint90Writes) / float64(f.UniqueWrites)
	}
	wShare := 0.0
	if t := f.TotalReads + f.TotalWrites; t > 0 {
		wShare = float64(f.TotalWrites) / float64(t)
	}
	return []float64{
		f.GlobalReadEntropy, f.LocalReadEntropy,
		f.GlobalWriteEntropy, f.LocalWriteEntropy,
		concR, concW, wShare,
	}
}

// rank orders the paper's workloads by distance to the custom trace's
// signature, normalizing entropies to [0,1] by the table's maxima.
func rank(f prism.Features) []neighbor {
	mine := signature(f)
	var out []neighbor
	for name, pf := range reference.PaperFeatures() {
		theirs := signature(pf)
		var d float64
		for i := range mine {
			scale := math.Max(math.Abs(mine[i]), math.Abs(theirs[i]))
			if scale == 0 {
				continue
			}
			diff := (mine[i] - theirs[i]) / scale
			d += diff * diff
		}
		out = append(out, neighbor{name: name, dist: math.Sqrt(d)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].dist < out[j].dist })
	return out
}
