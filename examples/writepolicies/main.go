// Writepolicies: evaluate the NVM write-mitigation techniques the paper
// surveys, on a PCRAM LLC where writes are the problem.
//
// The paper's Section I categorizes prior NVM-LLC work into (1) adapted
// architectural techniques like wear leveling, (2) novel techniques like
// cache bypassing, and (3) device-level tradeoffs. This example runs a
// write-heavy workload on the worst-case PCRAM LLC (Kang_P, 375 nJ/write,
// 3·10⁷ endurance) and quantifies each lever this library models:
//
//   - dead-block write bypassing (category 2): LLC writes and energy saved;
//   - intra-set wear leveling headroom (category 1): lifetime reclaimed;
//   - replacement policy (LRU vs SRRIP vs Random): hit-rate interaction;
//   - writes on/off the critical path: the simulator assumption ablation.
//
// Run with: go run ./examples/writepolicies [workload]   (default: bzip2)
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"nvmllc/internal/cache"
	"nvmllc/internal/endurance"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/tablefmt"
	"nvmllc/internal/workload"
)

func main() {
	name := "bzip2"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	profile, err := workload.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := workload.Generate(profile, workload.Options{Accesses: 500_000})
	if err != nil {
		log.Fatal(err)
	}
	kang, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		log.Fatal(err)
	}

	run := func(mutate func(*system.Config)) *system.Result {
		cfg := system.Gainestown(kang)
		cfg.TrackWear = true
		if mutate != nil {
			mutate(&cfg)
		}
		r, err := system.Run(context.Background(), cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	base := run(nil)
	bypass := run(func(c *system.Config) { c.LLCBypass = system.BypassDeadBlock })
	srrip := run(func(c *system.Config) { c.LLCPolicy = cache.SRRIP })
	random := run(func(c *system.Config) { c.LLCPolicy = cache.Random })
	contention := run(func(c *system.Config) { c.ModelWriteContention = true })
	hybrid := run(func(c *system.Config) {
		c.TrackWear = false
		c.Hybrid = &system.HybridConfig{
			SRAM: reference.SRAMBaseline(), NVM: kang, SRAMWays: 4,
		}
	})

	t := tablefmt.New(fmt.Sprintf("%s on Kang_P (PCRAM, 2MB): write-mitigation levers", name),
		"configuration", "time [ms]", "LLC writes", "bypassed", "dyn energy [mJ]", "LLC hits")
	row := func(label string, r *system.Result) {
		t.AddRowf(label, r.TimeNS/1e6, r.LLC.Writes,
			r.LLC.BypassedFills+r.LLC.BypassedWritebacks, r.LLCDynamicJ*1e3, r.LLC.Hits)
	}
	row("baseline (paper config)", base)
	row("dead-block bypass", bypass)
	row("SRRIP replacement", srrip)
	row("random replacement", random)
	row("writes ON critical path", contention)
	row("hybrid 4×SRAM + 12×PCRAM", hybrid)
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nHybrid placement absorbs %.1f%% of writes in SRAM (dynamic energy %.1f%% of pure PCRAM).\n",
		float64(hybrid.Hybrid.SRAMWrites)/float64(hybrid.Hybrid.SRAMWrites+hybrid.Hybrid.NVMWrites)*100,
		hybrid.LLCDynamicJ/base.LLCDynamicJ*100)
	fmt.Printf("Bypass saves %.1f%% of LLC dynamic energy (%d of %d writes avoided).\n",
		(1-bypass.LLCDynamicJ/base.LLCDynamicJ)*100,
		bypass.LLC.BypassedFills+bypass.LLC.BypassedWritebacks,
		base.LLC.Writes)
	fmt.Printf("Write contention on the critical path costs %.1f%% execution time —\n"+
		"the effect the paper notes its simulator hides.\n",
		(contention.TimeNS/base.TimeNS-1)*100)

	// Endurance: what wear leveling buys.
	est, err := endurance.Estimate(base, endurance.Options{Class: kang.Class})
	if err != nil {
		log.Fatal(err)
	}
	estBypass, err := endurance.Estimate(bypass, endurance.Options{Class: kang.Class})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPCRAM lifetime at this wear rate: %.2g years raw, %.2g years with ideal\n"+
		"intra-set wear leveling (%.1f× headroom); bypassing stretches the raw\n"+
		"lifetime to %.2g years.\n",
		est.RawYears, est.LeveledYears, est.ImbalanceFactor, estBypass.RawYears)

	reads, writes, _ := tr.Counts()
	fmt.Printf("\n(workload: %d reads, %d writes over %d-line footprint)\n",
		reads, writes, profile.FootprintLines())
}
