// Quickstart: model an NVM cell as an LLC and simulate a workload on it.
//
// This walks the library's three layers end to end:
//
//  1. take a published NVM cell from the Table II corpus and fill its
//     unreported parameters with the paper's modeling heuristics,
//  2. turn the cell into an LLC-level model (timing, energy, area) with
//     the NVSim-style circuit model,
//  3. run a synthetic workload through the Gainestown full-system
//     simulator with that LLC and compare against the SRAM baseline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"nvmllc/internal/nvm"
	"nvmllc/internal/nvsim"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

func main() {
	// 1. Start from the reported parameters of Zhang's 22nm RRAM and let
	// the modeling heuristics complete the specification.
	cell := nvm.Strip(nvm.Zhang())
	derivs, err := nvm.Complete(cell, nvm.Corpus())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Completed %s with %d heuristic derivations:\n", cell.DisplayName(), len(derivs))
	for _, d := range derivs {
		fmt.Printf("  %-18s = %-8.3g  (%s)\n", d.Param, d.Value, d.Note)
	}

	// 2. Generate the 2MB LLC model (the paper's fixed-capacity setup).
	model, err := nvsim.Generate(cell, nvsim.GainestownLLC())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s as a 2MB LLC: area %.3f mm², read %.2f ns, write %.1f ns, "+
		"E_write %.3f nJ, leakage %.3f W\n",
		model.Name, model.AreaMM2, model.ReadLatencyNS, model.WriteLatencyNS(),
		model.WriteEnergyNJ, model.LeakageW)

	// 3. Simulate the cg workload (conjugate gradient, the paper's
	// highest-MPKI NPB benchmark) on Gainestown with this LLC and with the
	// SRAM baseline.
	profile, err := workload.ByName("cg")
	if err != nil {
		log.Fatal(err)
	}
	tr, err := workload.Generate(profile, workload.Options{Accesses: 400_000})
	if err != nil {
		log.Fatal(err)
	}
	nvmRes, err := system.Run(context.Background(), system.Gainestown(*model), tr)
	if err != nil {
		log.Fatal(err)
	}
	sramRes, err := system.Run(context.Background(), system.Gainestown(reference.SRAMBaseline()), tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncg on %s vs SRAM:\n", model.Name)
	fmt.Printf("  speedup over SRAM : %.3f\n", sramRes.TimeNS/nvmRes.TimeNS)
	fmt.Printf("  LLC energy        : %.3f× SRAM (%.3f mJ vs %.3f mJ)\n",
		nvmRes.LLCEnergyJ()/sramRes.LLCEnergyJ(),
		nvmRes.LLCEnergyJ()*1e3, sramRes.LLCEnergyJ()*1e3)
	fmt.Printf("  ED²P              : %.3f× SRAM\n", nvmRes.ED2P()/sramRes.ED2P())
	fmt.Printf("  LLC MPKI          : %.1f\n", nvmRes.LLCMPKI())
}
