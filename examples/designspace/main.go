// Designspace: sweep every Table III LLC technology for one workload and
// pick the best, the design exercise the paper's Section V enables.
//
// For a chosen workload it simulates all eleven LLCs in both the
// fixed-capacity and fixed-area configurations, prints normalized speedup,
// energy and ED²P bar charts, and recommends the winner per objective —
// demonstrating the paper's conclusion that the best NVM depends on the
// use case.
//
// Run with: go run ./examples/designspace [workload]   (default: mg)
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"nvmllc/internal/reference"
	"nvmllc/internal/sweep"
	"nvmllc/internal/tablefmt"
	"nvmllc/internal/workload"
)

func main() {
	name := "mg"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if _, err := workload.ByName(name); err != nil {
		log.Fatal(err)
	}
	cfg := sweep.Config{Opts: workload.Options{Accesses: 500_000}}

	for _, block := range []struct {
		label  string
		models func() (*sweep.FigureResult, error)
	}{
		{"fixed-capacity (2MB)", func() (*sweep.FigureResult, error) {
			return sweep.RunFigure(context.Background(), "fixed-capacity", reference.FixedCapacityModels(), []string{name}, cfg)
		}},
		{"fixed-area (6.55 mm²)", func() (*sweep.FigureResult, error) {
			return sweep.RunFigure(context.Background(), "fixed-area", reference.FixedAreaModels(), []string{name}, cfg)
		}},
	} {
		fig, err := block.models()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s on %s ===\n\n", name, block.label)
		charts := []struct {
			title  string
			values []float64
			better string
		}{
			{"speedup over SRAM (higher is better)", fig.Speedup[0], "max"},
			{"LLC energy vs SRAM (lower is better)", fig.Energy[0], "min"},
			{"ED²P vs SRAM (lower is better)", fig.ED2P[0], "min"},
		}
		for _, c := range charts {
			chart := &tablefmt.BarChart{
				Title:    c.title,
				Labels:   fig.LLCs,
				Values:   c.values,
				RefValue: 1.0,
				MaxWidth: 40,
			}
			if err := chart.Render(os.Stdout); err != nil {
				log.Fatal(err)
			}
			best, val := pick(fig.LLCs, c.values, c.better == "max")
			fmt.Printf("  → best: %s (%.3f)\n\n", best, val)
		}
	}
	fmt.Println("The winner changes with the objective and the configuration —")
	fmt.Println("the paper's point: NVM selection must consider the use case.")
}

// pick returns the argmax or argmin label.
func pick(labels []string, values []float64, max bool) (string, float64) {
	bi := 0
	for i, v := range values {
		if (max && v > values[bi]) || (!max && v < values[bi]) {
			bi = i
		}
	}
	return labels[bi], values[bi]
}
