// Memoryhierarchy: an all-NVM memory hierarchy study — the endpoint of the
// trajectory the paper's Section II describes ("beginning decades ago as a
// storage solution, NVMs have slowly made their way down the memory
// hierarchy").
//
// It composes the library's three modeling layers into full-stack designs:
//
//  1. conventional:  SRAM LLC            + DRAM main memory
//  2. paper's move:  STT-RAM LLC (Xue_S) + DRAM main memory
//  3. dense 3D LLC:  Hayakawa RRAM stacked 4-high at the SRAM area
//     budget              + DRAM main memory
//  4. all-NVM:       STT-RAM LLC         + PCRAM main memory
//
// and compares performance, LLC energy and main-memory behavior on a
// capacity-hungry workload.
//
// Run with: go run ./examples/memoryhierarchy [workload]   (default: mg)
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"nvmllc/internal/mainmem"
	"nvmllc/internal/nvm"
	"nvmllc/internal/nvsim"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/tablefmt"
	"nvmllc/internal/workload"
)

func main() {
	name := "mg"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	profile, err := workload.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := workload.Generate(profile, workload.Options{Accesses: 600_000})
	if err != nil {
		log.Fatal(err)
	}

	// Build the 3D-stacked RRAM LLC with the circuit model: 4 layers of
	// Hayakawa's TaOx RRAM fitted to the SRAM baseline's 6.55 mm² budget.
	org := nvsim.GainestownLLC()
	org.Layers = 4
	stacked, err := nvsim.FitCapacityToArea(nvm.Hayakawa(), org, reference.SRAMBaselineAreaMM2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3D RRAM LLC from the circuit model: %d MB in %.2f mm² (4 layers), read %.2f ns\n\n",
		stacked.CapacityBytes>>20, stacked.AreaMM2, stacked.ReadLatencyNS)

	sramLLC := reference.SRAMBaseline()
	xue, err := reference.ModelByName(reference.FixedAreaModels(), "Xue_S")
	if err != nil {
		log.Fatal(err)
	}

	type design struct {
		name    string
		llc     nvsim.LLCModel
		memTech mainmem.Tech
	}
	designs := []design{
		{"SRAM LLC + DRAM", sramLLC, mainmem.DRAM},
		{"Xue_S LLC + DRAM", xue, mainmem.DRAM},
		{"3D Hayakawa LLC + DRAM", *stacked, mainmem.DRAM},
		{"Xue_S LLC + PCRAM memory", xue, mainmem.PCRAMMem},
	}

	t := tablefmt.New(fmt.Sprintf("%s across full-stack designs", name),
		"design", "time [ms]", "LLC energy [mJ]", "LLC MPKI", "mem row-hit", "mem energy [mJ]")
	var baseTime float64
	for i, d := range designs {
		mem, err := mainmem.New(mainmem.Preset(d.memTech))
		if err != nil {
			log.Fatal(err)
		}
		cfg := system.Gainestown(d.llc)
		cfg.Memory = mem
		r, err := system.Run(context.Background(), cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseTime = r.TimeNS
		}
		ms := mem.Stats()
		t.AddRowf(d.name, r.TimeNS/1e6, r.LLCEnergyJ()*1e3, r.LLCMPKI(),
			ms.RowHitRate(), mem.EnergyJ(r.TimeNS)*1e3)
		if i == len(designs)-1 {
			fmt.Printf("all-NVM stack vs conventional: %.2f× execution time\n\n", r.TimeNS/baseTime)
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDense NVM LLCs soak up the misses that would otherwise expose the")
	fmt.Println("slow PCRAM main memory — capacity close to the processor is what the")
	fmt.Println("paper argues emerging working sets need.")
}
